//! Directory blocks: fixed-size entries, single-level directories.
//!
//! Directory contents are metadata: their blocks travel the physical-copy
//! path in every server configuration (§3.3).

use crate::error::FsError;
use crate::inode::Ino;
use crate::BLOCK_SIZE;

/// Maximum file name length.
pub const NAME_MAX: usize = 27;
/// Encoded entry size: 1 length byte + name + 4-byte inode.
pub const ENTRY_SIZE: usize = 32;
/// Entries per directory block.
pub const ENTRIES_PER_BLOCK: usize = BLOCK_SIZE / ENTRY_SIZE;

/// One directory entry.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DirEntry {
    /// Entry name.
    pub name: String,
    /// Target inode.
    pub ino: Ino,
}

/// Validates a name for use in a directory.
///
/// # Errors
///
/// [`FsError::InvalidName`] when empty, too long, or containing `/` or NUL.
pub fn validate_name(name: &str) -> Result<(), FsError> {
    if name.is_empty() || name.len() > NAME_MAX {
        return Err(FsError::InvalidName);
    }
    if name.bytes().any(|b| b == b'/' || b == 0) {
        return Err(FsError::InvalidName);
    }
    Ok(())
}

/// Parses every live entry in a directory block.
pub fn entries_in_block(block: &[u8]) -> Vec<DirEntry> {
    let mut out = Vec::new();
    for slot in block.chunks_exact(ENTRY_SIZE) {
        if let Some(e) = decode_entry(slot) {
            out.push(e);
        }
    }
    out
}

/// Decodes the entry in one 32-byte slot; `None` if the slot is free.
pub fn decode_entry(slot: &[u8]) -> Option<DirEntry> {
    let len = slot[0] as usize;
    if len == 0 || len > NAME_MAX {
        return None;
    }
    let name = std::str::from_utf8(&slot[1..1 + len]).ok()?.to_string();
    let ino = u32::from_le_bytes(slot[NAME_MAX + 1..NAME_MAX + 5].try_into().expect("4 bytes"));
    Some(DirEntry {
        name,
        ino: Ino(ino),
    })
}

/// Writes `entry` into slot `slot_idx` of `block`.
///
/// # Panics
///
/// Panics if the slot index is out of range or the name is invalid
/// (callers must [`validate_name`] first).
pub fn encode_entry(block: &mut [u8], slot_idx: usize, entry: &DirEntry) {
    assert!(slot_idx < ENTRIES_PER_BLOCK, "slot out of range");
    validate_name(&entry.name).expect("caller must validate the name");
    let at = slot_idx * ENTRY_SIZE;
    let slot = &mut block[at..at + ENTRY_SIZE];
    slot.fill(0);
    slot[0] = entry.name.len() as u8;
    slot[1..1 + entry.name.len()].copy_from_slice(entry.name.as_bytes());
    slot[NAME_MAX + 1..NAME_MAX + 5].copy_from_slice(&entry.ino.0.to_le_bytes());
}

/// Clears slot `slot_idx` of `block`.
///
/// # Panics
///
/// Panics if the slot index is out of range.
pub fn clear_entry(block: &mut [u8], slot_idx: usize) {
    assert!(slot_idx < ENTRIES_PER_BLOCK, "slot out of range");
    let at = slot_idx * ENTRY_SIZE;
    block[at..at + ENTRY_SIZE].fill(0);
}

/// Finds `name` in a directory block, returning its slot index and entry.
pub fn find_in_block(block: &[u8], name: &str) -> Option<(usize, DirEntry)> {
    for (i, slot) in block.chunks_exact(ENTRY_SIZE).enumerate() {
        if let Some(e) = decode_entry(slot) {
            if e.name == name {
                return Some((i, e));
            }
        }
    }
    None
}

/// Finds the first free slot in a directory block.
pub fn free_slot(block: &[u8]) -> Option<usize> {
    block
        .chunks_exact(ENTRY_SIZE)
        .position(|slot| decode_entry(slot).is_none())
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::gen::*;
    use check::{prop_assert_eq, property};

    #[test]
    fn entry_round_trip() {
        let mut block = vec![0u8; BLOCK_SIZE];
        let e = DirEntry {
            name: "hello.txt".to_string(),
            ino: Ino(42),
        };
        encode_entry(&mut block, 3, &e);
        assert_eq!(decode_entry(&block[3 * ENTRY_SIZE..4 * ENTRY_SIZE]), Some(e.clone()));
        assert_eq!(entries_in_block(&block), vec![e.clone()]);
        assert_eq!(find_in_block(&block, "hello.txt"), Some((3, e)));
        assert_eq!(find_in_block(&block, "missing"), None);
    }

    #[test]
    fn free_slot_skips_used() {
        let mut block = vec![0u8; BLOCK_SIZE];
        assert_eq!(free_slot(&block), Some(0));
        encode_entry(
            &mut block,
            0,
            &DirEntry {
                name: "a".to_string(),
                ino: Ino(1),
            },
        );
        assert_eq!(free_slot(&block), Some(1));
    }

    #[test]
    fn clear_entry_frees_slot() {
        let mut block = vec![0u8; BLOCK_SIZE];
        encode_entry(
            &mut block,
            0,
            &DirEntry {
                name: "a".to_string(),
                ino: Ino(1),
            },
        );
        clear_entry(&mut block, 0);
        assert!(entries_in_block(&block).is_empty());
    }

    #[test]
    fn full_block_has_no_free_slot() {
        let mut block = vec![0u8; BLOCK_SIZE];
        for i in 0..ENTRIES_PER_BLOCK {
            encode_entry(
                &mut block,
                i,
                &DirEntry {
                    name: format!("f{i}"),
                    ino: Ino(i as u32),
                },
            );
        }
        assert_eq!(free_slot(&block), None);
        assert_eq!(entries_in_block(&block).len(), ENTRIES_PER_BLOCK);
    }

    #[test]
    fn name_validation() {
        assert!(validate_name("ok-name.txt").is_ok());
        assert_eq!(validate_name(""), Err(FsError::InvalidName));
        assert_eq!(validate_name(&"x".repeat(28)), Err(FsError::InvalidName));
        assert!(validate_name(&"x".repeat(27)).is_ok());
        assert_eq!(validate_name("a/b"), Err(FsError::InvalidName));
        assert_eq!(validate_name("a\0b"), Err(FsError::InvalidName));
    }

    #[test]
    #[should_panic(expected = "slot out of range")]
    fn encode_bad_slot_panics() {
        let mut block = vec![0u8; BLOCK_SIZE];
        encode_entry(
            &mut block,
            ENTRIES_PER_BLOCK,
            &DirEntry {
                name: "a".to_string(),
                ino: Ino(0),
            },
        );
    }

    property! {
        fn prop_entry_round_trip(
            name in string_of(FILENAME, 1..28),
            ino in any_u32(),
            slot in ints(0usize..ENTRIES_PER_BLOCK),
        ) {
            let mut block = vec![0u8; BLOCK_SIZE];
            let e = DirEntry { name, ino: Ino(ino) };
            encode_entry(&mut block, slot, &e);
            prop_assert_eq!(find_in_block(&block, &e.name), Some((slot, e.clone())));
        }
    }
}
