//! The file system proper: layout, inode/block mapping, directories, and
//! both data-movement interfaces (physical copying and NCache's logical
//! key-moving), all running over a [`BlockStore`] through the
//! [`BufferCache`].

use netbuf::key::KeyStamp;
use netbuf::{CopyLedger, NetBuf, Segment};

use crate::alloc::Bitmap;
use crate::cache::{BufferCache, CacheStats, Writeback};
use crate::dir::{self, DirEntry};
use crate::error::FsError;
use crate::inode::{
    block_path, BlockPath, FileType, Ino, Inode, INODES_PER_BLOCK, INODE_SIZE, NO_BLOCK,
    PTRS_PER_BLOCK,
};
use crate::store::{BlockClass, BlockStore};
use crate::BLOCK_SIZE;

/// Geometry and tuning parameters for a new file system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FsParams {
    /// Volume size in blocks.
    pub total_blocks: u64,
    /// Number of inodes to provision.
    pub inode_count: u32,
    /// Buffer-cache capacity in blocks.
    pub cache_blocks: usize,
    /// Read-ahead window in blocks (the paper tunes this to match the NFS
    /// request size, §5.4).
    pub read_ahead_blocks: u64,
}

impl Default for FsParams {
    fn default() -> Self {
        FsParams {
            total_blocks: 16_384,
            inode_count: 1_024,
            cache_blocks: 2_048,
            read_ahead_blocks: 8,
        }
    }
}

const SB_MAGIC: u32 = 0x4e43_4653; // "NCFS"

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Superblock {
    total_blocks: u64,
    inode_count: u32,
    ibitmap_start: u64,
    ibitmap_blocks: u64,
    dbitmap_start: u64,
    dbitmap_blocks: u64,
    itable_start: u64,
    itable_blocks: u64,
    data_start: u64,
}

impl Superblock {
    fn layout(total_blocks: u64, inode_count: u32) -> Superblock {
        let ibitmap_start = 1;
        let ibitmap_blocks = u64::from(inode_count)
            .div_ceil(crate::alloc::BITS_PER_BLOCK)
            .max(1);
        let itable_start = ibitmap_start + ibitmap_blocks;
        let itable_blocks = u64::from(inode_count)
            .div_ceil(INODES_PER_BLOCK as u64)
            .max(1);
        let dbitmap_start = itable_start + itable_blocks;
        // Data bitmap sized for the remaining blocks (slightly generous:
        // it also covers its own blocks, which are marked used at mkfs).
        let remaining = total_blocks.saturating_sub(dbitmap_start);
        let dbitmap_blocks = remaining.div_ceil(crate::alloc::BITS_PER_BLOCK).max(1);
        let data_start = dbitmap_start + dbitmap_blocks;
        Superblock {
            total_blocks,
            inode_count,
            ibitmap_start,
            ibitmap_blocks,
            dbitmap_start,
            dbitmap_blocks,
            itable_start,
            itable_blocks,
            data_start,
        }
    }

    fn data_blocks(&self) -> u64 {
        self.total_blocks.saturating_sub(self.data_start)
    }

    fn encode(&self) -> Vec<u8> {
        let mut b = vec![0u8; BLOCK_SIZE];
        b[0..4].copy_from_slice(&SB_MAGIC.to_le_bytes());
        b[8..16].copy_from_slice(&self.total_blocks.to_le_bytes());
        b[16..20].copy_from_slice(&self.inode_count.to_le_bytes());
        b[24..32].copy_from_slice(&self.ibitmap_start.to_le_bytes());
        b[32..40].copy_from_slice(&self.ibitmap_blocks.to_le_bytes());
        b[40..48].copy_from_slice(&self.dbitmap_start.to_le_bytes());
        b[48..56].copy_from_slice(&self.dbitmap_blocks.to_le_bytes());
        b[56..64].copy_from_slice(&self.itable_start.to_le_bytes());
        b[64..72].copy_from_slice(&self.itable_blocks.to_le_bytes());
        b[72..80].copy_from_slice(&self.data_start.to_le_bytes());
        b
    }

    fn decode(b: &[u8]) -> Result<Superblock, FsError> {
        if b.len() < BLOCK_SIZE {
            return Err(FsError::Corrupt("short superblock"));
        }
        if u32::from_le_bytes(b[0..4].try_into().expect("4 bytes")) != SB_MAGIC {
            return Err(FsError::Corrupt("superblock magic"));
        }
        let g64 = |at: usize| u64::from_le_bytes(b[at..at + 8].try_into().expect("8 bytes"));
        Ok(Superblock {
            total_blocks: g64(8),
            inode_count: u32::from_le_bytes(b[16..20].try_into().expect("4 bytes")),
            ibitmap_start: g64(24),
            ibitmap_blocks: g64(32),
            dbitmap_start: g64(40),
            dbitmap_blocks: g64(48),
            itable_start: g64(56),
            itable_blocks: g64(64),
            data_start: g64(72),
        })
    }
}

/// One block returned by the logical (key-moving) read path: the cached
/// segment attached by reference plus its identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogicalBlock {
    /// File block index.
    pub file_index: u64,
    /// Volume block address (the LBN the storage server knows it by), or
    /// `None` for an unallocated hole.
    pub lbn: Option<u64>,
    /// The cached block contents, shared (not copied).
    pub seg: Segment,
    /// Bytes of this block that fall inside the requested range and file.
    pub valid_len: usize,
}

/// The file system. The root directory is inode 0.
///
/// # Examples
///
/// ```
/// use netbuf::CopyLedger;
/// use simfs::{Filesystem, FsParams, MemStore};
///
/// let ledger = CopyLedger::new();
/// let store = MemStore::new(16_384);
/// let mut fs = Filesystem::mkfs(store, FsParams::default(), &ledger)?;
/// let ino = fs.create(Filesystem::<MemStore>::ROOT, "hello.txt")?;
/// fs.write(ino, 0, b"hello world")?;
/// let mut buf = [0u8; 11];
/// assert_eq!(fs.read(ino, 0, &mut buf)?, 11);
/// assert_eq!(&buf, b"hello world");
/// # Ok::<(), simfs::FsError>(())
/// ```
#[derive(Debug)]
pub struct Filesystem<S> {
    store: S,
    sb: Superblock,
    cache: BufferCache,
    ibitmap: Bitmap,
    dbitmap: Bitmap,
    ledger: CopyLedger,
    read_ahead: u64,
    alloc_cursor: u64,
    recorder: Option<obs::Recorder>,
}

impl<S: BlockStore> Filesystem<S> {
    /// The root directory's inode number.
    pub const ROOT: Ino = Ino(0);

    /// Formats `store` and returns the mounted file system.
    ///
    /// # Errors
    ///
    /// [`FsError::NoSpace`] if the volume is too small for the layout.
    pub fn mkfs(mut store: S, params: FsParams, ledger: &CopyLedger) -> Result<Self, FsError> {
        let sb = Superblock::layout(params.total_blocks, params.inode_count);
        if sb.data_start >= params.total_blocks {
            return Err(FsError::NoSpace);
        }
        store.write_block(0, BlockClass::Meta, &Segment::from_vec(sb.encode()));
        // Zero the inode table so free slots decode as free.
        let zero = Segment::zeroed(BLOCK_SIZE);
        for i in 0..sb.itable_blocks {
            store.write_block(sb.itable_start + i, BlockClass::Meta, &zero);
        }
        let mut ibitmap = Bitmap::new(u64::from(params.inode_count));
        let dbitmap = Bitmap::new(sb.data_blocks());
        // Root directory: inode 0, empty.
        ibitmap.set(0);
        let mut fs = Filesystem {
            store,
            sb,
            cache: BufferCache::new(params.cache_blocks),
            ibitmap,
            dbitmap,
            ledger: ledger.clone(),
            read_ahead: params.read_ahead_blocks,
            alloc_cursor: 0,
            recorder: None,
        };
        fs.store_inode(Self::ROOT, &Inode::new(FileType::Directory))?;
        fs.write_bitmaps_full();
        fs.sync()?;
        Ok(fs)
    }

    /// Mounts an existing file system.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupt`] if the superblock does not verify.
    pub fn mount(
        mut store: S,
        cache_blocks: usize,
        read_ahead_blocks: u64,
        ledger: &CopyLedger,
    ) -> Result<Self, FsError> {
        let sb = Superblock::decode(store.read_block(0, BlockClass::Meta).as_slice())?;
        let mut iraw = Vec::new();
        for i in 0..sb.ibitmap_blocks {
            iraw.extend_from_slice(
                store.read_block(sb.ibitmap_start + i, BlockClass::Meta).as_slice(),
            );
        }
        let mut draw = Vec::new();
        for i in 0..sb.dbitmap_blocks {
            draw.extend_from_slice(
                store.read_block(sb.dbitmap_start + i, BlockClass::Meta).as_slice(),
            );
        }
        Ok(Filesystem {
            ibitmap: Bitmap::from_raw(u64::from(sb.inode_count), &iraw),
            dbitmap: Bitmap::from_raw(sb.data_blocks(), &draw),
            store,
            sb,
            cache: BufferCache::new(cache_blocks),
            ledger: ledger.clone(),
            read_ahead: read_ahead_blocks,
            alloc_cursor: 0,
            recorder: None,
        })
    }

    /// Emits buffer-cache events and write-back batches on `rec`.
    pub fn set_recorder(&mut self, rec: obs::Recorder) {
        self.cache.set_recorder(rec.clone());
        self.recorder = Some(rec);
    }

    /// The copy ledger this file system charges.
    pub fn ledger(&self) -> &CopyLedger {
        &self.ledger
    }

    /// Buffer-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Blocks currently resident in the buffer cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Dirty fraction of the buffer cache in permille — the control
    /// plane's backpressure signal.
    pub fn cache_dirty_permille(&self) -> u32 {
        self.cache.dirty_permille()
    }

    /// Resizes the buffer cache (the NCache configuration shrinks it to
    /// whatever RAM the pinned network-centric cache leaves, §4.1).
    pub fn set_cache_capacity(&mut self, blocks: usize) {
        let wb = self.cache.set_capacity(blocks);
        self.do_writebacks(wb);
    }

    /// Current buffer-cache capacity in blocks (the FS side of the split).
    pub fn cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Attaches a ghost LRU tail to the buffer cache (see
    /// [`BufferCache::enable_ghost`]).
    pub fn enable_cache_ghost(&mut self, cap: usize) {
        self.cache.enable_ghost(cap);
    }

    /// Counters of the buffer cache's ghost tail, or `None` when none is
    /// attached.
    pub fn cache_ghost_stats(&self) -> Option<ncache::GhostStats> {
        self.cache.ghost_stats()
    }

    /// Advances the buffer cache's plain recency counter past `stamp`
    /// (see [`BufferCache::advance_seq_past`]).
    pub fn advance_cache_seq_past(&self, stamp: u64) {
        self.cache.advance_seq_past(stamp);
    }

    /// Sets the read-ahead window in blocks.
    pub fn set_read_ahead(&mut self, blocks: u64) {
        self.read_ahead = blocks;
    }

    /// Free data blocks remaining.
    pub fn free_blocks(&self) -> u64 {
        self.dbitmap.free_count()
    }

    /// Access to the backing store (for test inspection).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Exclusive access to the backing store (the NCache build drains the
    /// module's eviction writebacks through the initiator living here).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    // ----- namespace operations (metadata paths) -----

    /// Creates an empty regular file `name` in directory `parent`.
    ///
    /// # Errors
    ///
    /// [`FsError::Exists`] if the name is taken, [`FsError::NotADirectory`]
    /// if `parent` is not a directory, [`FsError::InvalidName`] /
    /// [`FsError::NoSpace`] as applicable.
    pub fn create(&mut self, parent: Ino, name: &str) -> Result<Ino, FsError> {
        dir::validate_name(name)?;
        let mut dnode = self.load_inode(parent)?;
        if dnode.ftype != FileType::Directory {
            return Err(FsError::NotADirectory);
        }
        if self.dir_find(&dnode, name)?.is_some() {
            return Err(FsError::Exists);
        }
        let ino_idx = self.ibitmap.alloc(0)?;
        let ino = Ino(ino_idx as u32);
        self.store_inode(ino, &Inode::new(FileType::Regular))?;
        self.dir_add(parent, &mut dnode, name, ino)?;
        Ok(ino)
    }

    /// Looks `name` up in directory `parent`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if absent; [`FsError::NotADirectory`] if
    /// `parent` is not a directory.
    pub fn lookup(&mut self, parent: Ino, name: &str) -> Result<Ino, FsError> {
        let dnode = self.load_inode(parent)?;
        if dnode.ftype != FileType::Directory {
            return Err(FsError::NotADirectory);
        }
        match self.dir_find(&dnode, name)? {
            Some((_, _, e)) => Ok(e.ino),
            None => Err(FsError::NotFound),
        }
    }

    /// Returns the attributes of `ino`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if the inode is free or out of range.
    pub fn getattr(&mut self, ino: Ino) -> Result<Inode, FsError> {
        self.load_inode(ino)
    }

    /// Lists directory `parent`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotADirectory`] if `parent` is not a directory.
    pub fn readdir(&mut self, parent: Ino) -> Result<Vec<DirEntry>, FsError> {
        let dnode = self.load_inode(parent)?;
        if dnode.ftype != FileType::Directory {
            return Err(FsError::NotADirectory);
        }
        let mut out = Vec::new();
        for idx in 0..dnode.size_blocks() {
            if let Some(lbn) = self.map_block_mut(&dnode, idx)? {
                let seg = self.read_block_cached(lbn, BlockClass::Meta);
                out.extend(dir::entries_in_block(seg.as_slice()));
            }
        }
        Ok(out)
    }

    /// Removes file `name` from directory `parent`, freeing its inode and
    /// blocks.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if absent; [`FsError::NotAFile`] if the entry
    /// is a directory (directories cannot be unlinked in this subset).
    pub fn remove(&mut self, parent: Ino, name: &str) -> Result<(), FsError> {
        let dnode = self.load_inode(parent)?;
        if dnode.ftype != FileType::Directory {
            return Err(FsError::NotADirectory);
        }
        let (blk_idx, slot, entry) = self.dir_find(&dnode, name)?.ok_or(FsError::NotFound)?;
        let victim = self.load_inode(entry.ino)?;
        if victim.ftype != FileType::Regular {
            return Err(FsError::NotAFile);
        }
        // Clear the directory slot.
        let lbn = self
            .map_block_mut(&dnode, blk_idx)?
            .ok_or(FsError::Corrupt("directory hole"))?;
        let seg = self.read_block_cached(lbn, BlockClass::Meta);
        let mut block = seg.as_slice().to_vec();
        dir::clear_entry(&mut block, slot);
        self.write_block_cached(lbn, BlockClass::Meta, Segment::from_vec(block));
        // Free the file's storage.
        self.free_file_blocks(&victim)?;
        let table_lbn = self.inode_lbn(entry.ino);
        let seg = self.read_block_cached(table_lbn, BlockClass::Meta);
        let mut block = seg.as_slice().to_vec();
        let at = (entry.ino.0 as usize % INODES_PER_BLOCK) * INODE_SIZE;
        block[at..at + INODE_SIZE].fill(0);
        self.write_block_cached(table_lbn, BlockClass::Meta, Segment::from_vec(block));
        self.ibitmap.free(u64::from(entry.ino.0));
        Ok(())
    }

    // ----- physical (copying) data paths -----

    /// Reads up to `out.len()` bytes at `offset`, physically copying each
    /// covered block out of the buffer cache (charged to the ledger).
    /// Returns the bytes read (short at end of file).
    ///
    /// # Errors
    ///
    /// [`FsError::NotAFile`] on directories; [`FsError::NotFound`] on free
    /// inodes.
    pub fn read(&mut self, ino: Ino, offset: u64, out: &mut [u8]) -> Result<usize, FsError> {
        let inode = self.load_inode(ino)?;
        if inode.ftype != FileType::Regular {
            return Err(FsError::NotAFile);
        }
        if offset >= inode.size {
            return Ok(0);
        }
        let len = out.len().min((inode.size - offset) as usize);
        let mut done = 0usize;
        while done < len {
            let pos = offset + done as u64;
            let blk = pos / BLOCK_SIZE as u64;
            let in_off = (pos % BLOCK_SIZE as u64) as usize;
            let take = (BLOCK_SIZE - in_off).min(len - done);
            match self.map_and_fetch(&inode, blk)? {
                Some(seg) => {
                    out[done..done + take].copy_from_slice(&seg.as_slice()[in_off..in_off + take]);
                }
                None => out[done..done + take].fill(0),
            }
            self.ledger.charge_payload_copy(take as u64);
            done += take;
        }
        Ok(len)
    }

    /// Writes `data` at `offset`, physically copying it into the buffer
    /// cache (charged), allocating and dirtying blocks as needed.
    ///
    /// # Errors
    ///
    /// [`FsError::NotAFile`], [`FsError::NoSpace`], or
    /// [`FsError::InvalidRange`] beyond the maximum file size.
    pub fn write(&mut self, ino: Ino, offset: u64, data: &[u8]) -> Result<(), FsError> {
        let mut inode = self.load_inode(ino)?;
        if inode.ftype != FileType::Regular {
            return Err(FsError::NotAFile);
        }
        let mut done = 0usize;
        while done < data.len() {
            let pos = offset + done as u64;
            let blk = pos / BLOCK_SIZE as u64;
            let in_off = (pos % BLOCK_SIZE as u64) as usize;
            let take = (BLOCK_SIZE - in_off).min(data.len() - done);
            let (lbn, fresh) = self.map_block_alloc(ino, &mut inode, blk)?;
            let mut block = if take == BLOCK_SIZE || fresh {
                vec![0u8; BLOCK_SIZE]
            } else {
                self.read_block_cached(lbn, BlockClass::Data)
                    .as_slice()
                    .to_vec()
            };
            block[in_off..in_off + take].copy_from_slice(&data[done..done + take]);
            self.ledger.charge_payload_copy(take as u64);
            self.write_block_cached(lbn, BlockClass::Data, Segment::from_vec(block));
            done += take;
        }
        if offset + data.len() as u64 > inode.size {
            inode.size = offset + data.len() as u64;
        }
        inode.mtime += 1;
        self.store_inode(ino, &inode)
    }

    /// sendfile: copies file bytes straight from the buffer cache into an
    /// outgoing packet — one physical copy, the kHTTPd fast path of
    /// Table 2. Returns the bytes appended (short at end of file).
    ///
    /// # Errors
    ///
    /// Same as [`Filesystem::read`].
    pub fn sendfile_into(
        &mut self,
        ino: Ino,
        offset: u64,
        len: usize,
        out: &mut NetBuf,
    ) -> Result<usize, FsError> {
        let inode = self.load_inode(ino)?;
        if inode.ftype != FileType::Regular {
            return Err(FsError::NotAFile);
        }
        if offset >= inode.size {
            return Ok(0);
        }
        let len = len.min((inode.size - offset) as usize);
        let mut done = 0usize;
        while done < len {
            let pos = offset + done as u64;
            let blk = pos / BLOCK_SIZE as u64;
            let in_off = (pos % BLOCK_SIZE as u64) as usize;
            let take = (BLOCK_SIZE - in_off).min(len - done);
            match self.map_and_fetch(&inode, blk)? {
                Some(seg) => out.append_bytes(&seg.as_slice()[in_off..in_off + take]),
                None => out.append_vec(vec![0u8; take]),
            }
            done += take;
        }
        Ok(len)
    }

    // ----- logical (key-moving) data paths: the NCache interfaces -----

    /// Reads blocks *by reference*: no payload bytes move; the returned
    /// segments share storage with the buffer cache. Under the NCache
    /// configuration these blocks contain a [`KeyStamp`] plus junk, and the
    /// server composes replies from them without looking at the contents.
    ///
    /// # Errors
    ///
    /// [`FsError::InvalidRange`] if `offset` is not block-aligned; the
    /// rest as [`Filesystem::read`].
    pub fn read_logical(
        &mut self,
        ino: Ino,
        offset: u64,
        len: usize,
    ) -> Result<Vec<LogicalBlock>, FsError> {
        if !offset.is_multiple_of(BLOCK_SIZE as u64) {
            return Err(FsError::InvalidRange);
        }
        let inode = self.load_inode(ino)?;
        if inode.ftype != FileType::Regular {
            return Err(FsError::NotAFile);
        }
        if offset >= inode.size {
            return Ok(Vec::new());
        }
        let len = len.min((inode.size - offset) as usize);
        let first = offset / BLOCK_SIZE as u64;
        let nblocks = (len as u64).div_ceil(BLOCK_SIZE as u64);
        let mut out = Vec::with_capacity(nblocks as usize);
        for i in 0..nblocks {
            let blk = first + i;
            let valid = (len - (i as usize * BLOCK_SIZE)).min(BLOCK_SIZE);
            let lbn = self.map_block_mut(&inode, blk)?;
            let seg = match lbn {
                Some(l) => {
                    let s = self.fetch_block(&inode, blk, l)?;
                    self.ledger.charge_logical_copy();
                    s
                }
                None => Segment::zeroed(BLOCK_SIZE),
            };
            out.push(LogicalBlock {
                file_index: blk,
                lbn,
                seg,
                valid_len: valid,
            });
        }
        Ok(out)
    }

    /// Residency probe for the concurrent read fast path: decides —
    /// without counting a cache access or charging the ledger — whether a
    /// block-aligned [`Filesystem::read_logical`] would be served entirely
    /// from resident cache blocks (inode table, indirect and data blocks
    /// all cached, no holes). Returns the blocks it would attach, so the
    /// caller can validate placeholder stamps, or `None` if any part of
    /// the walk would miss — the caller then takes the ordinary exclusive
    /// path, which can fetch.
    pub fn probe_read(&self, ino: Ino, offset: u64, len: usize) -> Option<Vec<LogicalBlock>> {
        if !offset.is_multiple_of(BLOCK_SIZE as u64) {
            return None;
        }
        let inode = self.peek_inode(ino)?;
        if inode.ftype != FileType::Regular || offset >= inode.size {
            return None;
        }
        let len = len.min((inode.size - offset) as usize);
        let first = offset / BLOCK_SIZE as u64;
        let nblocks = (len as u64).div_ceil(BLOCK_SIZE as u64);
        let mut out = Vec::with_capacity(nblocks as usize);
        for i in 0..nblocks {
            let blk = first + i;
            let valid = (len - (i as usize * BLOCK_SIZE)).min(BLOCK_SIZE);
            let lbn = self.peek_map_block(&inode, blk)?;
            let seg = self.cache.peek(lbn)?;
            out.push(LogicalBlock {
                file_index: blk,
                lbn: Some(lbn),
                seg,
                valid_len: valid,
            });
        }
        Some(out)
    }

    /// The committed counterpart of [`Filesystem::probe_read`]: performs
    /// exactly the counted cache accesses and ledger charges
    /// [`Filesystem::read_logical`] would on an all-hit walk (inode get,
    /// per-block indirect gets, data get, one logical copy per block),
    /// through `&self`. Callers must have validated residency with
    /// [`Filesystem::probe_read`] and must hold off eviction for the
    /// duration — the lane-parallel engine does both under the rig's
    /// shared read guard, which excludes every mutating path.
    ///
    /// # Panics
    ///
    /// Panics if any probed block is no longer resident — a fast-path
    /// contract violation, never an expected condition.
    pub fn read_logical_shared(&self, ino: Ino, offset: u64, len: usize) -> Vec<LogicalBlock> {
        assert!(
            offset.is_multiple_of(BLOCK_SIZE as u64),
            "fast-path reads are block-aligned"
        );
        let inode = self.load_inode_shared(ino);
        assert!(
            inode.ftype == FileType::Regular && offset < inode.size,
            "fast-path reads are probed first"
        );
        let len = len.min((inode.size - offset) as usize);
        let first = offset / BLOCK_SIZE as u64;
        let nblocks = (len as u64).div_ceil(BLOCK_SIZE as u64);
        let mut out = Vec::with_capacity(nblocks as usize);
        for i in 0..nblocks {
            let blk = first + i;
            let valid = (len - (i as usize * BLOCK_SIZE)).min(BLOCK_SIZE);
            let lbn = self
                .map_block_shared(&inode, blk)
                .expect("probed reads have no holes");
            let seg = self.get_resident(lbn);
            self.ledger.charge_logical_copy();
            out.push(LogicalBlock {
                file_index: blk,
                lbn: Some(lbn),
                seg,
                valid_len: valid,
            });
        }
        out
    }

    /// [`Filesystem::getattr`] through `&self` for probed fast-path reads:
    /// the same counted inode-table access, no fetch.
    ///
    /// # Panics
    ///
    /// Panics if the inode block is not resident (see
    /// [`Filesystem::read_logical_shared`]).
    pub fn getattr_shared(&self, ino: Ino) -> Inode {
        self.load_inode_shared(ino)
    }

    /// Uncounted, unpromoted inode read (the probe side).
    fn peek_inode(&self, ino: Ino) -> Option<Inode> {
        if u64::from(ino.0) >= u64::from(self.sb.inode_count) {
            return None;
        }
        let seg = self.cache.peek(self.inode_lbn(ino))?;
        let at = (ino.0 as usize % INODES_PER_BLOCK) * INODE_SIZE;
        Inode::decode(&seg.as_slice()[at..at + INODE_SIZE]).ok()
    }

    /// Uncounted block mapping: `None` for holes *and* for unresident
    /// indirect blocks (the probe cannot fetch).
    fn peek_map_block(&self, inode: &Inode, blk: u64) -> Option<u64> {
        match block_path(blk).ok()? {
            BlockPath::Direct { slot } => nonzero(inode.direct[slot]),
            BlockPath::Single { slot } => {
                let ind = nonzero(inode.single)?;
                let seg = self.cache.peek(ind)?;
                nonzero(ptr_at(seg.as_slice(), slot))
            }
            BlockPath::Double {
                which,
                outer,
                inner,
            } => {
                let root = nonzero(inode.double[which])?;
                let seg = self.cache.peek(root)?;
                let mid = nonzero(ptr_at(seg.as_slice(), outer))?;
                let seg = self.cache.peek(mid)?;
                nonzero(ptr_at(seg.as_slice(), inner))
            }
        }
    }

    /// Counted block mapping through `&self`, mirroring
    /// [`Filesystem::map_block_mut`]'s access order on the all-hit walk.
    fn map_block_shared(&self, inode: &Inode, blk: u64) -> Option<u64> {
        match block_path(blk).expect("probed block path is valid") {
            BlockPath::Direct { slot } => nonzero(inode.direct[slot]),
            BlockPath::Single { slot } => {
                let ind = nonzero(inode.single)?;
                let seg = self.get_resident(ind);
                nonzero(ptr_at(seg.as_slice(), slot))
            }
            BlockPath::Double {
                which,
                outer,
                inner,
            } => {
                let root = nonzero(inode.double[which])?;
                let seg = self.get_resident(root);
                let mid = nonzero(ptr_at(seg.as_slice(), outer))?;
                let seg = self.get_resident(mid);
                nonzero(ptr_at(seg.as_slice(), inner))
            }
        }
    }

    /// Counted [`BufferCache::get`] of a block the probe saw resident.
    fn get_resident(&self, lbn: u64) -> Segment {
        self.cache
            .get(lbn)
            .expect("fast-path block resident under the read guard")
    }

    fn load_inode_shared(&self, ino: Ino) -> Inode {
        let seg = self.get_resident(self.inode_lbn(ino));
        let at = (ino.0 as usize % INODES_PER_BLOCK) * INODE_SIZE;
        Inode::decode(&seg.as_slice()[at..at + INODE_SIZE]).expect("probed inode decodes")
    }

    /// Writes placeholder blocks carrying `stamps` instead of payload —
    /// the NCache write path: the real data stays in the network-centric
    /// cache, keyed by FHO; the buffer cache holds key + junk (§3.2).
    ///
    /// # Errors
    ///
    /// [`FsError::InvalidRange`] if `offset` is not block-aligned or
    /// `stamps` does not cover `len`; the rest as [`Filesystem::write`].
    pub fn write_logical(
        &mut self,
        ino: Ino,
        offset: u64,
        len: usize,
        stamps: &[KeyStamp],
    ) -> Result<(), FsError> {
        if !offset.is_multiple_of(BLOCK_SIZE as u64) {
            return Err(FsError::InvalidRange);
        }
        let nblocks = (len as u64).div_ceil(BLOCK_SIZE as u64);
        if stamps.len() as u64 != nblocks {
            return Err(FsError::InvalidRange);
        }
        let mut inode = self.load_inode(ino)?;
        if inode.ftype != FileType::Regular {
            return Err(FsError::NotAFile);
        }
        let first = offset / BLOCK_SIZE as u64;
        for (i, stamp) in stamps.iter().enumerate() {
            let (lbn, _) = self.map_block_alloc(ino, &mut inode, first + i as u64)?;
            // Stamp the block with its LBN identity as well: after the
            // flush remaps the FHO entry into the LBN cache, replies
            // composed from this placeholder must still resolve (§3.4's
            // dual-key replies, FHO consulted first).
            let stamp = if stamp.is_keyed() && stamp.lbn.is_none() {
                stamp.with_lbn(netbuf::key::Lbn(lbn))
            } else {
                *stamp
            };
            let mut block = vec![0u8; BLOCK_SIZE];
            stamp.encode_into(&mut block);
            self.ledger.charge_logical_copy();
            self.ledger.charge_header_bytes(KeyStamp::LEN as u64);
            self.write_block_cached(lbn, BlockClass::Data, Segment::from_vec(block));
        }
        if offset + len as u64 > inode.size {
            inode.size = offset + len as u64;
        }
        inode.mtime += 1;
        self.store_inode(ino, &inode)
    }

    /// Allocates blocks for `[0, size)` and sets the file size *without
    /// writing data* — the blocks keep whatever the backing store holds.
    /// Experiment setup uses this to pre-populate multi-gigabyte files
    /// whose contents are the store's deterministic synthetic blocks,
    /// avoiding materializing the data.
    ///
    /// # Errors
    ///
    /// As [`Filesystem::write`].
    pub fn allocate(&mut self, ino: Ino, size: u64) -> Result<(), FsError> {
        let mut inode = self.load_inode(ino)?;
        if inode.ftype != FileType::Regular {
            return Err(FsError::NotAFile);
        }
        for blk in 0..size.div_ceil(BLOCK_SIZE as u64) {
            self.map_block_alloc(ino, &mut inode, blk)?;
        }
        if size > inode.size {
            inode.size = size;
        }
        inode.mtime += 1;
        self.store_inode(ino, &inode)
    }

    /// The volume LBN a file block maps to, if allocated (used by servers
    /// to translate FHO keys into LBNs at flush time).
    ///
    /// # Errors
    ///
    /// As [`Filesystem::read`].
    pub fn block_lbn(&mut self, ino: Ino, file_block: u64) -> Result<Option<u64>, FsError> {
        let inode = self.load_inode(ino)?;
        self.map_block_mut(&inode, file_block)
    }

    // ----- flushing -----

    /// Writes every dirty cache block (and the allocation bitmaps) to the
    /// backing store.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for interface stability.
    pub fn sync(&mut self) -> Result<(), FsError> {
        let wbs = self.cache.flush_dirty();
        self.emit_writeback_batch(wbs.len());
        self.do_writebacks(wbs);
        self.write_dirty_bitmaps();
        Ok(())
    }

    /// Write-behind: flushes up to `n` of the oldest dirty blocks.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for interface stability.
    pub fn sync_some(&mut self, n: usize) -> Result<(), FsError> {
        let wbs = self.cache.flush_oldest(n);
        self.emit_writeback_batch(wbs.len());
        self.do_writebacks(wbs);
        Ok(())
    }

    fn emit_writeback_batch(&self, blocks: usize) {
        if blocks == 0 {
            return;
        }
        if let Some(rec) = &self.recorder {
            rec.emit(obs::EventKind::Writeback {
                blocks: blocks as u64,
            });
        }
    }

    /// Dirty blocks resident in the buffer cache.
    pub fn dirty_blocks(&self) -> usize {
        self.cache.dirty_len()
    }

    /// Drops a block from the buffer cache without writeback (used to
    /// invalidate dangling placeholders; the next access refetches).
    pub fn discard_cached(&mut self, lbn: u64) {
        self.cache.discard(lbn);
    }

    /// Overrides a file's recorded size (servers use this to correct the
    /// block-granular growth of [`Filesystem::write_logical`] after an
    /// unaligned request).
    ///
    /// # Errors
    ///
    /// [`FsError::NotAFile`] on directories; [`FsError::NotFound`] on free
    /// inodes.
    pub fn set_size(&mut self, ino: Ino, size: u64) -> Result<(), FsError> {
        let mut inode = self.load_inode(ino)?;
        if inode.ftype != FileType::Regular {
            return Err(FsError::NotAFile);
        }
        inode.size = size;
        self.store_inode(ino, &inode)
    }

    // ----- internals -----

    fn inode_lbn(&self, ino: Ino) -> u64 {
        self.sb.itable_start + u64::from(ino.0) / INODES_PER_BLOCK as u64
    }

    fn load_inode(&mut self, ino: Ino) -> Result<Inode, FsError> {
        if u64::from(ino.0) >= u64::from(self.sb.inode_count) {
            return Err(FsError::NotFound);
        }
        let lbn = self.inode_lbn(ino);
        let seg = self.read_block_cached(lbn, BlockClass::Meta);
        let at = (ino.0 as usize % INODES_PER_BLOCK) * INODE_SIZE;
        Inode::decode(&seg.as_slice()[at..at + INODE_SIZE]).map_err(|_| FsError::NotFound)
    }

    fn store_inode(&mut self, ino: Ino, inode: &Inode) -> Result<(), FsError> {
        let lbn = self.inode_lbn(ino);
        let seg = self.read_block_cached(lbn, BlockClass::Meta);
        let mut block = seg.as_slice().to_vec();
        let at = (ino.0 as usize % INODES_PER_BLOCK) * INODE_SIZE;
        inode.encode_into(&mut block[at..at + INODE_SIZE]);
        self.write_block_cached(lbn, BlockClass::Meta, Segment::from_vec(block));
        Ok(())
    }

    fn read_block_cached(&mut self, lbn: u64, class: BlockClass) -> Segment {
        if let Some(seg) = self.cache.get(lbn) {
            return seg;
        }
        let seg = self.store.read_block(lbn, class);
        let wb = self.cache.insert(lbn, seg.clone(), class, false);
        self.do_writebacks(wb);
        seg
    }

    fn write_block_cached(&mut self, lbn: u64, class: BlockClass, seg: Segment) {
        if self.cache.contains(lbn) {
            self.cache.update(lbn, seg);
        } else {
            let wb = self.cache.insert(lbn, seg, class, true);
            self.do_writebacks(wb);
        }
    }

    fn do_writebacks(&mut self, wbs: Vec<Writeback>) {
        for wb in wbs {
            self.store.write_block(wb.lbn, wb.class, &wb.seg);
        }
    }

    fn write_bitmaps_full(&mut self) {
        for i in 0..self.ibitmap.block_count() {
            let lbn = self.sb.ibitmap_start + i as u64;
            let seg = Segment::from_vec(self.ibitmap.block_bytes(i).to_vec());
            self.write_block_cached(lbn, BlockClass::Meta, seg);
        }
        for i in 0..self.dbitmap.block_count() {
            let lbn = self.sb.dbitmap_start + i as u64;
            let seg = Segment::from_vec(self.dbitmap.block_bytes(i).to_vec());
            self.write_block_cached(lbn, BlockClass::Meta, seg);
        }
        self.ibitmap.take_dirty_blocks();
        self.dbitmap.take_dirty_blocks();
    }

    fn write_dirty_bitmaps(&mut self) {
        for i in self.ibitmap.take_dirty_blocks() {
            let lbn = self.sb.ibitmap_start + i as u64;
            let data = Segment::from_vec(self.ibitmap.block_bytes(i).to_vec());
            self.store.write_block(lbn, BlockClass::Meta, &data);
        }
        for i in self.dbitmap.take_dirty_blocks() {
            let lbn = self.sb.dbitmap_start + i as u64;
            let data = Segment::from_vec(self.dbitmap.block_bytes(i).to_vec());
            self.store.write_block(lbn, BlockClass::Meta, &data);
        }
    }

    fn alloc_block(&mut self) -> Result<u64, FsError> {
        let idx = self.dbitmap.alloc(self.alloc_cursor)?;
        self.alloc_cursor = idx + 1;
        Ok(self.sb.data_start + idx)
    }

    /// Maps a file block for writing, allocating data and indirect blocks
    /// as needed, persisting any inode change. Returns the LBN and whether
    /// the data block was freshly allocated (so callers never read stale
    /// store contents when hole-filling).
    fn map_block_alloc(
        &mut self,
        ino: Ino,
        inode: &mut Inode,
        blk: u64,
    ) -> Result<(u64, bool), FsError> {
        match block_path(blk)? {
            BlockPath::Direct { slot } => {
                if let Some(l) = nonzero(inode.direct[slot]) {
                    return Ok((l, false));
                }
                let l = self.alloc_block()?;
                inode.direct[slot] = l;
                self.store_inode(ino, inode)?;
                Ok((l, true))
            }
            BlockPath::Single { slot } => {
                let ind = match nonzero(inode.single) {
                    Some(l) => l,
                    None => {
                        let l = self.alloc_indirect()?;
                        inode.single = l;
                        self.store_inode(ino, inode)?;
                        l
                    }
                };
                self.alloc_in_indirect(ind, slot)
            }
            BlockPath::Double {
                which,
                outer,
                inner,
            } => {
                let root = match nonzero(inode.double[which]) {
                    Some(l) => l,
                    None => {
                        let l = self.alloc_indirect()?;
                        inode.double[which] = l;
                        self.store_inode(ino, inode)?;
                        l
                    }
                };
                let mid = {
                    let seg = self.read_block_cached(root, BlockClass::Meta);
                    match nonzero(ptr_at(seg.as_slice(), outer)) {
                        Some(l) => l,
                        None => {
                            let l = self.alloc_indirect()?;
                            self.set_ptr(root, outer, l);
                            l
                        }
                    }
                };
                self.alloc_in_indirect(mid, inner)
            }
        }
    }

    fn alloc_in_indirect(&mut self, ind_lbn: u64, slot: usize) -> Result<(u64, bool), FsError> {
        let seg = self.read_block_cached(ind_lbn, BlockClass::Meta);
        if let Some(l) = nonzero(ptr_at(seg.as_slice(), slot)) {
            return Ok((l, false));
        }
        let l = self.alloc_block()?;
        self.set_ptr(ind_lbn, slot, l);
        Ok((l, true))
    }

    fn alloc_indirect(&mut self) -> Result<u64, FsError> {
        let l = self.alloc_block()?;
        self.write_block_cached(l, BlockClass::Meta, Segment::zeroed(BLOCK_SIZE));
        Ok(l)
    }

    fn set_ptr(&mut self, ind_lbn: u64, slot: usize, value: u64) {
        let seg = self.read_block_cached(ind_lbn, BlockClass::Meta);
        let mut block = seg.as_slice().to_vec();
        block[slot * 8..slot * 8 + 8].copy_from_slice(&value.to_le_bytes());
        self.write_block_cached(ind_lbn, BlockClass::Meta, Segment::from_vec(block));
    }

    /// Maps then fetches a block for reading, with read-ahead on miss.
    fn map_and_fetch(&mut self, inode: &Inode, blk: u64) -> Result<Option<Segment>, FsError> {
        match self.map_block_mut(inode, blk)? {
            Some(lbn) => Ok(Some(self.fetch_block(inode, blk, lbn)?)),
            None => Ok(None),
        }
    }

    /// Read-only block mapping that may consult the store for indirect
    /// blocks (hence `&mut self`).
    fn map_block_mut(&mut self, inode: &Inode, blk: u64) -> Result<Option<u64>, FsError> {
        match block_path(blk)? {
            BlockPath::Direct { slot } => Ok(nonzero(inode.direct[slot])),
            BlockPath::Single { slot } => {
                let ind = match nonzero(inode.single) {
                    Some(l) => l,
                    None => return Ok(None),
                };
                let seg = self.read_block_cached(ind, BlockClass::Meta);
                Ok(nonzero(ptr_at(seg.as_slice(), slot)))
            }
            BlockPath::Double {
                which,
                outer,
                inner,
            } => {
                let root = match nonzero(inode.double[which]) {
                    Some(l) => l,
                    None => return Ok(None),
                };
                let seg = self.read_block_cached(root, BlockClass::Meta);
                let mid = match nonzero(ptr_at(seg.as_slice(), outer)) {
                    Some(l) => l,
                    None => return Ok(None),
                };
                let seg = self.read_block_cached(mid, BlockClass::Meta);
                Ok(nonzero(ptr_at(seg.as_slice(), inner)))
            }
        }
    }

    fn fetch_block(&mut self, inode: &Inode, blk: u64, lbn: u64) -> Result<Segment, FsError> {
        if let Some(seg) = self.cache.get(lbn) {
            return Ok(seg);
        }
        // Miss: fetch the block and its read-ahead window.
        let seg = {
            let s = self.store.read_block(lbn, BlockClass::Data);
            let wb = self.cache.insert(lbn, s.clone(), BlockClass::Data, false);
            self.do_writebacks(wb);
            s
        };
        let last = inode.size_blocks();
        for ahead in 1..=self.read_ahead {
            let nblk = blk + ahead;
            if nblk >= last {
                break;
            }
            if let Some(nlbn) = self.map_block_mut(inode, nblk)? {
                if !self.cache.contains(nlbn) {
                    let s = self.store.read_block(nlbn, BlockClass::Data);
                    let wb = self.cache.insert(nlbn, s, BlockClass::Data, false);
                    self.do_writebacks(wb);
                }
            }
        }
        Ok(seg)
    }

    // ----- directory internals -----

    fn dir_find(
        &mut self,
        dnode: &Inode,
        name: &str,
    ) -> Result<Option<(u64, usize, DirEntry)>, FsError> {
        for idx in 0..dnode.size_blocks() {
            if let Some(lbn) = self.map_block_mut(dnode, idx)? {
                let seg = self.read_block_cached(lbn, BlockClass::Meta);
                if let Some((slot, e)) = dir::find_in_block(seg.as_slice(), name) {
                    return Ok(Some((idx, slot, e)));
                }
            }
        }
        Ok(None)
    }

    fn dir_add(
        &mut self,
        parent: Ino,
        dnode: &mut Inode,
        name: &str,
        ino: Ino,
    ) -> Result<(), FsError> {
        let entry = DirEntry {
            name: name.to_string(),
            ino,
        };
        // Try existing blocks first.
        for idx in 0..dnode.size_blocks() {
            if let Some(lbn) = self.map_block_mut(dnode, idx)? {
                let seg = self.read_block_cached(lbn, BlockClass::Meta);
                if let Some(slot) = dir::free_slot(seg.as_slice()) {
                    let mut block = seg.as_slice().to_vec();
                    dir::encode_entry(&mut block, slot, &entry);
                    self.write_block_cached(lbn, BlockClass::Meta, Segment::from_vec(block));
                    return Ok(());
                }
            }
        }
        // Extend the directory by one block.
        let idx = dnode.size_blocks();
        let (lbn, _) = self.map_block_alloc(parent, dnode, idx)?;
        let mut block = vec![0u8; BLOCK_SIZE];
        dir::encode_entry(&mut block, 0, &entry);
        self.write_block_cached(lbn, BlockClass::Meta, Segment::from_vec(block));
        dnode.size = (idx + 1) * BLOCK_SIZE as u64;
        self.store_inode(parent, dnode)
    }

    fn free_file_blocks(&mut self, inode: &Inode) -> Result<(), FsError> {
        let release = |fsel: &mut Self, lbn: u64| {
            fsel.cache.discard(lbn);
            fsel.dbitmap.free(lbn - fsel.sb.data_start);
        };
        for d in inode.direct {
            if let Some(l) = nonzero(d) {
                release(self, l);
            }
        }
        if let Some(single) = nonzero(inode.single) {
            let seg = self.read_block_cached(single, BlockClass::Meta);
            let ptrs: Vec<u64> = (0..PTRS_PER_BLOCK)
                .filter_map(|s| nonzero(ptr_at(seg.as_slice(), s)))
                .collect();
            for l in ptrs {
                release(self, l);
            }
            release(self, single);
        }
        for root in inode.double {
            if let Some(root) = nonzero(root) {
                let seg = self.read_block_cached(root, BlockClass::Meta);
                let mids: Vec<u64> = (0..PTRS_PER_BLOCK)
                    .filter_map(|s| nonzero(ptr_at(seg.as_slice(), s)))
                    .collect();
                for mid in mids {
                    let seg = self.read_block_cached(mid, BlockClass::Meta);
                    let ptrs: Vec<u64> = (0..PTRS_PER_BLOCK)
                        .filter_map(|s| nonzero(ptr_at(seg.as_slice(), s)))
                        .collect();
                    for l in ptrs {
                        release(self, l);
                    }
                    release(self, mid);
                }
                release(self, root);
            }
        }
        Ok(())
    }
}

fn nonzero(lbn: u64) -> Option<u64> {
    (lbn != NO_BLOCK).then_some(lbn)
}

fn ptr_at(block: &[u8], slot: usize) -> u64 {
    u64::from_le_bytes(block[slot * 8..slot * 8 + 8].try_into().expect("8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::take_op_tally;
    use crate::store::MemStore;
    use netbuf::key::{Fho, FileHandle, Lbn};

    type Fs = Filesystem<MemStore>;

    fn newfs() -> Fs {
        let ledger = CopyLedger::new();
        Fs::mkfs(MemStore::new(16_384), FsParams::default(), &ledger).expect("mkfs")
    }

    #[test]
    fn mkfs_and_mount_round_trip() {
        let ledger = CopyLedger::new();
        let mut fs =
            Fs::mkfs(MemStore::new(16_384), FsParams::default(), &ledger).expect("mkfs");
        let ino = fs.create(Fs::ROOT, "f").expect("create");
        fs.write(ino, 0, b"persisted").expect("write");
        fs.sync().expect("sync");
        let store = fs.store().clone();
        let mut fs2 = Fs::mount(store, 256, 8, &ledger).expect("mount");
        let found = fs2.lookup(Fs::ROOT, "f").expect("lookup");
        assert_eq!(found, ino);
        let mut buf = [0u8; 9];
        fs2.read(found, 0, &mut buf).expect("read");
        assert_eq!(&buf, b"persisted");
    }

    #[test]
    fn mount_rejects_garbage() {
        let ledger = CopyLedger::new();
        assert_eq!(
            Fs::mount(MemStore::new(64), 16, 1, &ledger).unwrap_err(),
            FsError::Corrupt("superblock magic")
        );
    }

    #[test]
    fn create_lookup_getattr() {
        let mut fs = newfs();
        let a = fs.create(Fs::ROOT, "a.txt").expect("create");
        let b = fs.create(Fs::ROOT, "b.txt").expect("create");
        assert_ne!(a, b);
        assert_eq!(fs.lookup(Fs::ROOT, "a.txt").expect("lookup"), a);
        assert_eq!(fs.lookup(Fs::ROOT, "missing"), Err(FsError::NotFound));
        assert_eq!(fs.create(Fs::ROOT, "a.txt"), Err(FsError::Exists));
        let attrs = fs.getattr(a).expect("getattr");
        assert_eq!(attrs.ftype, FileType::Regular);
        assert_eq!(attrs.size, 0);
        let root = fs.getattr(Fs::ROOT).expect("root attrs");
        assert_eq!(root.ftype, FileType::Directory);
    }

    #[test]
    fn namespace_errors() {
        let mut fs = newfs();
        let f = fs.create(Fs::ROOT, "f").expect("create");
        assert_eq!(fs.create(f, "x"), Err(FsError::NotADirectory));
        assert_eq!(fs.lookup(f, "x"), Err(FsError::NotADirectory));
        assert_eq!(fs.create(Fs::ROOT, "bad/name"), Err(FsError::InvalidName));
        assert_eq!(fs.getattr(Ino(9999)), Err(FsError::NotFound));
        assert_eq!(fs.getattr(Ino(500)), Err(FsError::NotFound), "free inode");
    }

    #[test]
    fn readdir_lists_entries() {
        let mut fs = newfs();
        for i in 0..5 {
            fs.create(Fs::ROOT, &format!("file{i}")).expect("create");
        }
        let names: Vec<String> = fs
            .readdir(Fs::ROOT)
            .expect("readdir")
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names.len(), 5);
        assert!(names.contains(&"file3".to_string()));
    }

    #[test]
    fn directory_grows_past_one_block() {
        let mut fs = newfs();
        let n = dir::ENTRIES_PER_BLOCK + 10;
        for i in 0..n {
            fs.create(Fs::ROOT, &format!("f{i}")).expect("create");
        }
        assert_eq!(fs.readdir(Fs::ROOT).expect("readdir").len(), n);
        // And all entries remain findable.
        assert!(fs.lookup(Fs::ROOT, &format!("f{}", n - 1)).is_ok());
        assert!(fs.lookup(Fs::ROOT, "f0").is_ok());
    }

    #[test]
    fn write_read_small() {
        let mut fs = newfs();
        let f = fs.create(Fs::ROOT, "f").expect("create");
        fs.write(f, 0, b"hello").expect("write");
        let mut buf = [0u8; 16];
        let n = fs.read(f, 0, &mut buf).expect("read");
        assert_eq!(n, 5);
        assert_eq!(&buf[..5], b"hello");
        assert_eq!(fs.getattr(f).expect("attrs").size, 5);
    }

    #[test]
    fn write_read_crosses_indirect_boundaries() {
        let mut fs = newfs();
        let f = fs.create(Fs::ROOT, "big").expect("create");
        // Write a pattern spanning direct (16) into single-indirect range.
        let blocks = 40u64;
        for i in 0..blocks {
            let data = vec![i as u8; BLOCK_SIZE];
            fs.write(f, i * BLOCK_SIZE as u64, &data).expect("write");
        }
        for i in (0..blocks).rev() {
            let mut buf = vec![0u8; BLOCK_SIZE];
            fs.read(f, i * BLOCK_SIZE as u64, &mut buf).expect("read");
            assert_eq!(buf, vec![i as u8; BLOCK_SIZE], "block {i}");
        }
    }

    #[test]
    fn write_read_reaches_double_indirect() {
        let mut fs = newfs();
        let f = fs.create(Fs::ROOT, "huge").expect("create");
        // Block index 16 + 512 = 528 lives in the double-indirect range.
        let idx = 530u64;
        let data = vec![0xCD; BLOCK_SIZE];
        fs.write(f, idx * BLOCK_SIZE as u64, &data).expect("write");
        let mut buf = vec![0u8; BLOCK_SIZE];
        fs.read(f, idx * BLOCK_SIZE as u64, &mut buf).expect("read");
        assert_eq!(buf, data);
        // The hole before it reads as zeros.
        let mut hole = vec![0xFF; 100];
        fs.read(f, 0, &mut hole).expect("read hole");
        assert_eq!(hole, vec![0u8; 100]);
    }

    #[test]
    fn partial_block_overwrite_preserves_rest() {
        let mut fs = newfs();
        let f = fs.create(Fs::ROOT, "f").expect("create");
        fs.write(f, 0, &vec![0xAA; BLOCK_SIZE]).expect("write");
        fs.write(f, 100, b"XYZ").expect("overwrite");
        let mut buf = vec![0u8; BLOCK_SIZE];
        fs.read(f, 0, &mut buf).expect("read");
        assert_eq!(buf[99], 0xAA);
        assert_eq!(&buf[100..103], b"XYZ");
        assert_eq!(buf[103], 0xAA);
        assert_eq!(fs.getattr(f).expect("attrs").size, BLOCK_SIZE as u64);
    }

    #[test]
    fn read_past_eof() {
        let mut fs = newfs();
        let f = fs.create(Fs::ROOT, "f").expect("create");
        fs.write(f, 0, b"abc").expect("write");
        let mut buf = [0u8; 4];
        assert_eq!(fs.read(f, 10, &mut buf).expect("read"), 0);
        assert_eq!(fs.read(f, 2, &mut buf).expect("read"), 1);
    }

    #[test]
    fn read_write_on_directory_fails() {
        let mut fs = newfs();
        let mut buf = [0u8; 4];
        assert_eq!(fs.read(Fs::ROOT, 0, &mut buf), Err(FsError::NotAFile));
        assert_eq!(fs.write(Fs::ROOT, 0, b"x"), Err(FsError::NotAFile));
    }

    #[test]
    fn physical_read_write_charge_the_ledger() {
        let mut fs = newfs();
        let f = fs.create(Fs::ROOT, "f").expect("create");
        let before = fs.ledger().snapshot();
        fs.write(f, 0, &vec![1u8; BLOCK_SIZE]).expect("write");
        let after_write = fs.ledger().snapshot().delta_since(&before);
        assert_eq!(after_write.payload_copies, 1);
        assert_eq!(after_write.payload_bytes_copied, BLOCK_SIZE as u64);

        let before = fs.ledger().snapshot();
        let mut buf = vec![0u8; BLOCK_SIZE];
        fs.read(f, 0, &mut buf).expect("read");
        let after_read = fs.ledger().snapshot().delta_since(&before);
        assert_eq!(after_read.payload_copies, 1);
    }

    #[test]
    fn sendfile_is_one_copy() {
        let mut fs = newfs();
        let f = fs.create(Fs::ROOT, "f").expect("create");
        fs.write(f, 0, &vec![7u8; 2 * BLOCK_SIZE]).expect("write");
        let ledger = fs.ledger().clone();
        let before = ledger.snapshot();
        let mut pkt = NetBuf::new(&ledger);
        let n = fs
            .sendfile_into(f, 0, 2 * BLOCK_SIZE, &mut pkt)
            .expect("sendfile");
        assert_eq!(n, 2 * BLOCK_SIZE);
        let d = ledger.snapshot().delta_since(&before);
        assert_eq!(d.payload_copies, 2, "one copy per block, single pass");
        assert_eq!(pkt.payload_len(), 2 * BLOCK_SIZE);
        assert_eq!(pkt.copy_payload_to_vec(), vec![7u8; 2 * BLOCK_SIZE]);
    }

    #[test]
    fn logical_read_shares_cache_storage_and_copies_nothing() {
        let mut fs = newfs();
        let f = fs.create(Fs::ROOT, "f").expect("create");
        fs.write(f, 0, &vec![9u8; 2 * BLOCK_SIZE]).expect("write");
        let before = fs.ledger().snapshot();
        let blocks = fs.read_logical(f, 0, 2 * BLOCK_SIZE).expect("logical");
        let d = fs.ledger().snapshot().delta_since(&before);
        assert_eq!(d.payload_copies, 0, "logical read moves no payload");
        assert_eq!(d.logical_copies, 2);
        assert_eq!(blocks.len(), 2);
        assert!(blocks[0].lbn.is_some());
        assert_eq!(blocks[0].valid_len, BLOCK_SIZE);
        assert_eq!(blocks[0].seg.as_slice(), &vec![9u8; BLOCK_SIZE][..]);
    }

    #[test]
    fn probe_read_is_free_and_bails_on_cold_or_holey_walks() {
        let mut fs = newfs();
        let f = fs.create(Fs::ROOT, "f").expect("create");
        // Write past the single-indirect boundary so the probe exercises
        // indirect-block residency too.
        let size = 40 * BLOCK_SIZE;
        fs.write(f, 0, &vec![7u8; size]).expect("write");
        let before = (fs.ledger().snapshot(), fs.cache_stats());
        let _ = take_op_tally();
        assert!(fs.probe_read(f, 0, size).is_some(), "warm file probes ready");
        assert!(fs.probe_read(f, 4096, 8192).is_some());
        assert!(fs.probe_read(f, 1, 4096).is_none(), "unaligned");
        assert!(fs.probe_read(f, size as u64, 4096).is_none(), "past EOF");
        assert!(fs.probe_read(Ino(999_999), 0, 1).is_none(), "bad inode");
        assert_eq!(fs.ledger().snapshot(), before.0, "probe charges nothing");
        assert_eq!(fs.cache_stats(), before.1, "probe counts nothing");
        assert_eq!(take_op_tally(), 0, "probe leaves no op tally");
        // Dropping one covered block from the cache fails the probe.
        let lbn = fs.block_lbn(f, 2).expect("mapped").expect("allocated");
        fs.discard_cached(lbn);
        assert!(fs.probe_read(f, 0, size).is_none(), "cold block bails");
        assert!(fs.probe_read(f, 0, 2 * BLOCK_SIZE).is_some(), "range before it still probes");
    }

    #[test]
    fn shared_read_path_mirrors_read_logical_exactly() {
        // Two identical warm file systems: one serves through the &mut
        // path, the other through the shared fast path. Every observable —
        // returned blocks, ledger charges, cache stats, op tally — must
        // coincide.
        let build = || {
            let mut fs = newfs();
            let f = fs.create(Fs::ROOT, "f").expect("create");
            fs.write(f, 0, &vec![3u8; 20 * BLOCK_SIZE]).expect("write");
            (fs, f)
        };
        let (mut a, fa) = build();
        let (b, fb) = build();
        let snap_a = a.ledger().snapshot();
        let snap_b = b.ledger().snapshot();
        let _ = take_op_tally();
        let blocks_a = a.read_logical(fa, 2 * BLOCK_SIZE as u64, 6 * BLOCK_SIZE).expect("read");
        let attr_a = a.getattr(fa).expect("getattr");
        let tally_a = take_op_tally();
        let blocks_b = b.read_logical_shared(fb, 2 * BLOCK_SIZE as u64, 6 * BLOCK_SIZE);
        let attr_b = b.getattr_shared(fb);
        let tally_b = take_op_tally();
        assert_eq!(blocks_a.len(), blocks_b.len());
        for (x, y) in blocks_a.iter().zip(&blocks_b) {
            assert_eq!(x.file_index, y.file_index);
            assert_eq!(x.lbn, y.lbn);
            assert_eq!(x.valid_len, y.valid_len);
            assert_eq!(x.seg.as_slice(), y.seg.as_slice());
        }
        assert_eq!(attr_a, attr_b);
        assert_eq!(tally_a, tally_b, "same counted access count");
        assert_eq!(
            a.ledger().snapshot().delta_since(&snap_a),
            b.ledger().snapshot().delta_since(&snap_b),
            "same ledger charges"
        );
        assert_eq!(a.cache_stats(), b.cache_stats(), "same hit/miss counters");
    }

    #[test]
    fn logical_read_alignment_enforced() {
        let mut fs = newfs();
        let f = fs.create(Fs::ROOT, "f").expect("create");
        fs.write(f, 0, b"x").expect("write");
        assert_eq!(fs.read_logical(f, 1, 4), Err(FsError::InvalidRange));
    }

    #[test]
    fn logical_read_partial_tail() {
        let mut fs = newfs();
        let f = fs.create(Fs::ROOT, "f").expect("create");
        fs.write(f, 0, &vec![3u8; BLOCK_SIZE + 100]).expect("write");
        let blocks = fs.read_logical(f, 0, 2 * BLOCK_SIZE).expect("logical");
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].valid_len, BLOCK_SIZE);
        assert_eq!(blocks[1].valid_len, 100, "clipped at end of file");
    }

    #[test]
    fn write_logical_plants_stamps() {
        let mut fs = newfs();
        let f = fs.create(Fs::ROOT, "f").expect("create");
        let stamp = KeyStamp::new().with_fho(Fho::new(FileHandle(0xAB), 0));
        let before = fs.ledger().snapshot();
        fs.write_logical(f, 0, BLOCK_SIZE, &[stamp]).expect("write");
        let d = fs.ledger().snapshot().delta_since(&before);
        assert_eq!(d.payload_copies, 0, "logical write moves no payload");
        assert_eq!(fs.getattr(f).expect("attrs").size, BLOCK_SIZE as u64);
        // The block now carries the stamp, augmented with the block's LBN
        // identity so replies resolve even after remapping (§3.4).
        let blocks = fs.read_logical(f, 0, BLOCK_SIZE).expect("logical");
        let planted = KeyStamp::decode(blocks[0].seg.as_slice()).expect("stamped");
        assert_eq!(planted.fho, stamp.fho);
        assert_eq!(planted.lbn.map(|l| Some(l.0)), Some(blocks[0].lbn));
    }

    #[test]
    fn write_logical_validation() {
        let mut fs = newfs();
        let f = fs.create(Fs::ROOT, "f").expect("create");
        let stamp = KeyStamp::new().with_lbn(Lbn(1));
        assert_eq!(
            fs.write_logical(f, 1, BLOCK_SIZE, &[stamp]),
            Err(FsError::InvalidRange),
            "unaligned offset"
        );
        assert_eq!(
            fs.write_logical(f, 0, 2 * BLOCK_SIZE, &[stamp]),
            Err(FsError::InvalidRange),
            "stamp count mismatch"
        );
    }

    #[test]
    fn block_lbn_translates() {
        let mut fs = newfs();
        let f = fs.create(Fs::ROOT, "f").expect("create");
        assert_eq!(fs.block_lbn(f, 0).expect("map"), None, "hole");
        fs.write(f, 0, &vec![1u8; BLOCK_SIZE]).expect("write");
        let lbn = fs.block_lbn(f, 0).expect("map").expect("mapped");
        assert!(lbn >= fs.sb.data_start);
    }

    #[test]
    fn sequential_allocation_is_contiguous() {
        let mut fs = newfs();
        let f = fs.create(Fs::ROOT, "f").expect("create");
        fs.write(f, 0, &vec![0u8; 8 * BLOCK_SIZE]).expect("write");
        let lbns: Vec<u64> = (0..8)
            .map(|i| fs.block_lbn(f, i).expect("map").expect("mapped"))
            .collect();
        for w in lbns.windows(2) {
            assert_eq!(w[1], w[0] + 1, "sequential files allocate contiguously");
        }
    }

    #[test]
    fn remove_frees_space_and_name() {
        let mut fs = newfs();
        let f = fs.create(Fs::ROOT, "f").expect("create");
        fs.write(f, 0, &vec![1u8; 20 * BLOCK_SIZE]).expect("write");
        let free_before = fs.free_blocks();
        fs.remove(Fs::ROOT, "f").expect("remove");
        assert!(fs.free_blocks() > free_before, "blocks returned");
        assert_eq!(fs.lookup(Fs::ROOT, "f"), Err(FsError::NotFound));
        assert_eq!(fs.getattr(f), Err(FsError::NotFound), "inode freed");
        // The name and inode are reusable.
        let f2 = fs.create(Fs::ROOT, "f").expect("recreate");
        assert_eq!(f2, f, "inode slot reused");
    }

    #[test]
    fn remove_missing_fails() {
        let mut fs = newfs();
        assert_eq!(fs.remove(Fs::ROOT, "nope"), Err(FsError::NotFound));
    }

    #[test]
    fn cache_misses_hit_the_store_with_read_ahead() {
        let ledger = CopyLedger::new();
        let params = FsParams {
            cache_blocks: 4,
            read_ahead_blocks: 4,
            ..FsParams::default()
        };
        let mut fs = Fs::mkfs(MemStore::new(16_384), params, &ledger).expect("mkfs");
        let f = fs.create(Fs::ROOT, "f").expect("create");
        fs.write(f, 0, &vec![5u8; 16 * BLOCK_SIZE]).expect("write");
        fs.sync().expect("sync");
        // Evict everything by filling the tiny cache with other reads.
        fs.set_cache_capacity(0);
        fs.set_cache_capacity(8);
        let h0 = fs.cache_stats();
        let mut buf = vec![0u8; BLOCK_SIZE];
        fs.read(f, 0, &mut buf).expect("read");
        let h1 = fs.cache_stats();
        assert_eq!(buf, vec![5u8; BLOCK_SIZE]);
        assert!(h1.misses > h0.misses, "cold read misses");
        // Read-ahead brought the next block in: this read hits.
        fs.read(f, BLOCK_SIZE as u64, &mut buf).expect("read");
        let h2 = fs.cache_stats();
        assert_eq!(h2.misses, h1.misses, "read-ahead made this a hit");
    }

    #[test]
    fn no_space_is_reported() {
        let ledger = CopyLedger::new();
        let params = FsParams {
            total_blocks: 80,
            inode_count: 16,
            cache_blocks: 16,
            read_ahead_blocks: 1,
        };
        let mut fs = Fs::mkfs(MemStore::new(80), params, &ledger).expect("mkfs");
        let f = fs.create(Fs::ROOT, "f").expect("create");
        let big = vec![0u8; 200 * BLOCK_SIZE];
        assert_eq!(fs.write(f, 0, &big), Err(FsError::NoSpace));
    }

    #[test]
    fn dirty_data_survives_cache_pressure() {
        let ledger = CopyLedger::new();
        let params = FsParams {
            cache_blocks: 8,
            ..FsParams::default()
        };
        let mut fs = Fs::mkfs(MemStore::new(16_384), params, &ledger).expect("mkfs");
        let f = fs.create(Fs::ROOT, "f").expect("create");
        // Write far more than the cache holds, forcing dirty evictions.
        for i in 0..64u64 {
            fs.write(f, i * BLOCK_SIZE as u64, &vec![i as u8; BLOCK_SIZE])
                .expect("write");
        }
        for i in (0..64u64).rev() {
            let mut buf = vec![0u8; BLOCK_SIZE];
            fs.read(f, i * BLOCK_SIZE as u64, &mut buf).expect("read");
            assert_eq!(buf, vec![i as u8; BLOCK_SIZE], "block {i}");
        }
    }
}
