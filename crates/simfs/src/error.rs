//! File system errors.

use std::fmt;

/// Errors returned by file system operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsError {
    /// No such file or directory.
    NotFound,
    /// A directory entry with this name already exists.
    Exists,
    /// The operation targets the wrong kind of object (e.g. reading a
    /// directory as a file).
    NotAFile,
    /// The target is not a directory.
    NotADirectory,
    /// No free blocks or inodes remain.
    NoSpace,
    /// An offset or length is outside the representable file range.
    InvalidRange,
    /// A name is too long or contains invalid bytes.
    InvalidName,
    /// The on-disk structure is corrupt (bad magic, bad pointer).
    Corrupt(&'static str),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file or directory"),
            FsError::Exists => write!(f, "file exists"),
            FsError::NotAFile => write!(f, "not a regular file"),
            FsError::NotADirectory => write!(f, "not a directory"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::InvalidRange => write!(f, "offset or length out of range"),
            FsError::InvalidName => write!(f, "invalid file name"),
            FsError::Corrupt(what) => write!(f, "corrupt file system: {what}"),
        }
    }
}

impl std::error::Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(FsError::NotFound.to_string(), "no such file or directory");
        assert_eq!(
            FsError::Corrupt("superblock magic").to_string(),
            "corrupt file system: superblock magic"
        );
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(FsError::NoSpace);
        assert!(e.to_string().contains("space"));
    }
}
