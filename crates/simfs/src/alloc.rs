//! Bitmap allocator for blocks and inodes.
//!
//! The bitmap lives in metadata blocks on the volume; the [`Filesystem`]
//! loads it at mount and writes back the dirtied bitmap blocks through the
//! buffer cache, so allocation activity generates real metadata I/O (which
//! is traffic NCache does *not* accelerate — part of why Figure 7's gains
//! shrink as metadata operations dominate).
//!
//! [`Filesystem`]: crate::fs::Filesystem

use crate::error::FsError;
use crate::BLOCK_SIZE;

/// Bits per bitmap block.
pub const BITS_PER_BLOCK: u64 = (BLOCK_SIZE * 8) as u64;

/// An in-memory allocation bitmap with dirty-block tracking.
///
/// # Examples
///
/// ```
/// use simfs::alloc::Bitmap;
/// let mut bm = Bitmap::new(100);
/// let a = bm.alloc(0)?;
/// let b = bm.alloc(0)?;
/// assert_ne!(a, b);
/// bm.free(a);
/// assert!(!bm.is_set(a));
/// # Ok::<(), simfs::FsError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    bits: Vec<u8>,
    capacity: u64,
    free: u64,
    dirty_blocks: Vec<bool>,
}

impl Bitmap {
    /// An all-free bitmap tracking `capacity` objects.
    pub fn new(capacity: u64) -> Self {
        let blocks = capacity.div_ceil(BITS_PER_BLOCK).max(1) as usize;
        Bitmap {
            bits: vec![0u8; blocks * BLOCK_SIZE],
            capacity,
            free: capacity,
            dirty_blocks: vec![false; blocks],
        }
    }

    /// Rebuilds a bitmap from its on-disk blocks.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is shorter than the bitmap needs.
    pub fn from_raw(capacity: u64, raw: &[u8]) -> Self {
        let blocks = capacity.div_ceil(BITS_PER_BLOCK).max(1) as usize;
        assert!(raw.len() >= blocks * BLOCK_SIZE, "bitmap image too short");
        let bits = raw[..blocks * BLOCK_SIZE].to_vec();
        let mut used = 0u64;
        for i in 0..capacity {
            if bits[(i / 8) as usize] & (1 << (i % 8)) != 0 {
                used += 1;
            }
        }
        Bitmap {
            bits,
            capacity,
            free: capacity - used,
            dirty_blocks: vec![false; blocks],
        }
    }

    /// Number of objects this bitmap tracks.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Objects currently free.
    pub fn free_count(&self) -> u64 {
        self.free
    }

    /// Number of bitmap blocks backing this map.
    pub fn block_count(&self) -> usize {
        self.dirty_blocks.len()
    }

    /// Whether object `idx` is allocated.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn is_set(&self, idx: u64) -> bool {
        assert!(idx < self.capacity, "bitmap index out of range");
        self.bits[(idx / 8) as usize] & (1 << (idx % 8)) != 0
    }

    /// Allocates the first free object at or after `hint` (wrapping), marks
    /// it used, and returns its index.
    ///
    /// # Errors
    ///
    /// [`FsError::NoSpace`] when nothing is free.
    pub fn alloc(&mut self, hint: u64) -> Result<u64, FsError> {
        if self.free == 0 {
            return Err(FsError::NoSpace);
        }
        let start = if self.capacity == 0 { 0 } else { hint % self.capacity };
        for probe in 0..self.capacity {
            let idx = (start + probe) % self.capacity;
            if !self.is_set(idx) {
                self.set(idx);
                return Ok(idx);
            }
        }
        Err(FsError::NoSpace)
    }

    /// Marks object `idx` used.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or already set.
    pub fn set(&mut self, idx: u64) {
        assert!(!self.is_set(idx), "double allocation of index {idx}");
        self.bits[(idx / 8) as usize] |= 1 << (idx % 8);
        self.free -= 1;
        self.dirty_blocks[(idx / BITS_PER_BLOCK) as usize] = true;
    }

    /// Frees object `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or already free.
    pub fn free(&mut self, idx: u64) {
        assert!(self.is_set(idx), "double free of index {idx}");
        self.bits[(idx / 8) as usize] &= !(1 << (idx % 8));
        self.free += 1;
        self.dirty_blocks[(idx / BITS_PER_BLOCK) as usize] = true;
    }

    /// The raw bytes of bitmap block `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn block_bytes(&self, i: usize) -> &[u8] {
        &self.bits[i * BLOCK_SIZE..(i + 1) * BLOCK_SIZE]
    }

    /// Drains the indices of bitmap blocks dirtied since the last call.
    pub fn take_dirty_blocks(&mut self) -> Vec<usize> {
        let mut out = Vec::new();
        for (i, d) in self.dirty_blocks.iter_mut().enumerate() {
            if *d {
                out.push(i);
                *d = false;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::gen::*;
    use check::{prop_assert, prop_assert_eq, property};

    #[test]
    fn alloc_until_full_then_no_space() {
        let mut bm = Bitmap::new(10);
        let mut got = Vec::new();
        for _ in 0..10 {
            got.push(bm.alloc(0).expect("free space"));
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(bm.alloc(0), Err(FsError::NoSpace));
        assert_eq!(bm.free_count(), 0);
    }

    #[test]
    fn hint_steers_allocation() {
        let mut bm = Bitmap::new(100);
        assert_eq!(bm.alloc(40).expect("free"), 40);
        assert_eq!(bm.alloc(40).expect("free"), 41);
        // Wrapping search.
        let mut bm2 = Bitmap::new(4);
        bm2.set(3);
        assert_eq!(bm2.alloc(3).expect("free"), 0);
    }

    #[test]
    fn free_makes_reusable() {
        let mut bm = Bitmap::new(3);
        let a = bm.alloc(0).expect("free");
        bm.free(a);
        assert_eq!(bm.free_count(), 3);
        assert!(!bm.is_set(a));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut bm = Bitmap::new(3);
        bm.free(1);
    }

    #[test]
    #[should_panic(expected = "double allocation")]
    fn double_set_panics() {
        let mut bm = Bitmap::new(3);
        bm.set(1);
        bm.set(1);
    }

    #[test]
    fn dirty_block_tracking() {
        let mut bm = Bitmap::new(BITS_PER_BLOCK * 2 + 5);
        assert_eq!(bm.block_count(), 3);
        assert!(bm.take_dirty_blocks().is_empty());
        bm.set(0);
        bm.set(BITS_PER_BLOCK + 1);
        assert_eq!(bm.take_dirty_blocks(), vec![0, 1]);
        assert!(bm.take_dirty_blocks().is_empty(), "drained");
    }

    #[test]
    fn round_trip_through_raw_blocks() {
        let mut bm = Bitmap::new(200);
        for i in [0u64, 5, 77, 199] {
            bm.set(i);
        }
        let mut raw = Vec::new();
        for i in 0..bm.block_count() {
            raw.extend_from_slice(bm.block_bytes(i));
        }
        let restored = Bitmap::from_raw(200, &raw);
        assert_eq!(restored.free_count(), 196);
        for i in [0u64, 5, 77, 199] {
            assert!(restored.is_set(i));
        }
        assert!(!restored.is_set(1));
    }

    property! {
        fn prop_alloc_never_returns_duplicates(
            capacity in ints(1u64..500),
            hints in vec_of(any_u64(), 0..100),
        ) {
            let mut bm = Bitmap::new(capacity);
            let mut seen = std::collections::HashSet::new();
            for h in hints {
                match bm.alloc(h) {
                    Ok(idx) => {
                        prop_assert!(idx < capacity);
                        prop_assert!(seen.insert(idx), "duplicate allocation");
                    }
                    Err(FsError::NoSpace) => prop_assert_eq!(seen.len() as u64, capacity),
                    Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                }
            }
            prop_assert_eq!(bm.free_count(), capacity - seen.len() as u64);
        }

        fn prop_model_based_set_free(
            capacity in ints(1u64..300),
            ops in vec_of((any_u64(), any_bool()), 0..200),
        ) {
            let mut bm = Bitmap::new(capacity);
            let mut model = std::collections::HashSet::new();
            for (idx, set) in ops {
                let idx = idx % capacity;
                if set {
                    if !model.contains(&idx) {
                        bm.set(idx);
                        model.insert(idx);
                    }
                } else if model.contains(&idx) {
                    bm.free(idx);
                    model.remove(&idx);
                }
            }
            for i in 0..capacity {
                prop_assert_eq!(bm.is_set(i), model.contains(&i));
            }
            prop_assert_eq!(bm.free_count(), capacity - model.len() as u64);
        }
    }
}
