//! The block-device boundary under the file system.
//!
//! In the paper's testbed this boundary is the iSCSI initiator: every cache
//! miss or dirty-buffer flush becomes an iSCSI command to the storage
//! server. The `servers` crate provides that implementation; tests here use
//! [`MemStore`]. Each operation carries a [`BlockClass`] — the inode-type
//! context that iSCSI headers alone cannot convey but NCache's classifier
//! needs (§3.3: "the page data structure associated with iSCSI requests
//! contains the inode type information").

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use netbuf::Segment;

use crate::BLOCK_SIZE;

/// Whether a block belongs to file-system structure or to a regular file's
/// contents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BlockClass {
    /// Superblock, bitmaps, inode table, directory and indirect blocks —
    /// physically copied in every configuration.
    Meta,
    /// Regular-file contents — the traffic NCache caches and substitutes.
    Data,
}

/// A 4 KiB-block random-access device.
///
/// Blocks travel as shareable [`Segment`]s so that a zero-copy
/// implementation (the NCache iSCSI initiator) can hand back placeholder
/// blocks without materializing bytes.
pub trait BlockStore {
    /// Reads block `lbn`.
    fn read_block(&mut self, lbn: u64, class: BlockClass) -> Segment;

    /// Writes block `lbn`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `data` is not exactly one block.
    fn write_block(&mut self, lbn: u64, class: BlockClass, data: &Segment);

    /// Number of addressable blocks.
    fn block_count(&self) -> u64;
}

/// Deterministic content for a never-written block: a pattern derived from
/// the LBN, so multi-gigabyte volumes need no backing memory and
/// end-to-end integrity checks can recompute expected bytes.
pub fn synthetic_block(lbn: u64) -> Vec<u8> {
    let mut b = vec![0u8; BLOCK_SIZE];
    synthetic_block_into(lbn, &mut b);
    b
}

/// Writes [`synthetic_block`] contents directly into `out` (one whole
/// block), letting pooled-buffer call sites skip the intermediate vector.
///
/// # Panics
///
/// Panics if `out` is not exactly [`BLOCK_SIZE`] bytes.
pub fn synthetic_block_into(lbn: u64, out: &mut [u8]) {
    assert_eq!(out.len(), BLOCK_SIZE, "synthetic blocks are whole blocks");
    let mut x = lbn.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    for chunk in out.chunks_exact_mut(8) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        chunk.copy_from_slice(&x.to_le_bytes());
    }
}

/// An in-memory, sparse block store: written blocks are kept; unwritten
/// blocks read as [`synthetic_block`] contents.
///
/// # Examples
///
/// ```
/// use simfs::{BlockClass, BlockStore, MemStore};
/// let mut s = MemStore::new(1024);
/// use netbuf::Segment;
/// let before = s.read_block(7, BlockClass::Data);
/// s.write_block(7, BlockClass::Data, &Segment::from_vec(vec![0xAA; 4096]));
/// assert_ne!(s.read_block(7, BlockClass::Data), before);
/// ```
#[derive(Clone, Debug)]
pub struct MemStore {
    blocks: Arc<Mutex<HashMap<u64, Vec<u8>>>>,
    count: u64,
}

impl MemStore {
    /// A store of `count` blocks, all initially synthetic.
    pub fn new(count: u64) -> Self {
        MemStore {
            blocks: Arc::new(Mutex::new(HashMap::new())),
            count,
        }
    }

    /// Number of blocks that have been explicitly written (diagnostic).
    pub fn written_blocks(&self) -> usize {
        self.blocks.lock().expect("store poisoned").len()
    }
}

impl BlockStore for MemStore {
    fn read_block(&mut self, lbn: u64, _class: BlockClass) -> Segment {
        assert!(lbn < self.count, "lbn {lbn} out of range");
        Segment::from_vec(
            self.blocks
                .lock()
                .expect("store poisoned")
                .get(&lbn)
                .cloned()
                .unwrap_or_else(|| synthetic_block(lbn)),
        )
    }

    fn write_block(&mut self, lbn: u64, _class: BlockClass, data: &Segment) {
        assert!(lbn < self.count, "lbn {lbn} out of range");
        assert_eq!(data.len(), BLOCK_SIZE, "writes must be whole blocks");
        self.blocks
            .lock()
            .expect("store poisoned")
            .insert(lbn, data.as_slice().to_vec());
    }

    fn block_count(&self) -> u64 {
        self.count
    }
}

/// One recorded block-store operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StoreOp {
    /// Block address.
    pub lbn: u64,
    /// Metadata or regular data.
    pub class: BlockClass,
    /// True for writes.
    pub is_write: bool,
}

/// Wraps a store and records every operation — the hook the testbed uses to
/// turn the data plane's storage traffic into simulated iSCSI round trips.
#[derive(Debug)]
pub struct TraceStore<S> {
    inner: S,
    trace: Arc<Mutex<Vec<StoreOp>>>,
}

impl<S> TraceStore<S> {
    /// Wraps `inner`, recording into a fresh trace.
    pub fn new(inner: S) -> Self {
        TraceStore {
            inner,
            trace: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A shared handle to the trace (survives moving the store).
    pub fn trace_handle(&self) -> Arc<Mutex<Vec<StoreOp>>> {
        Arc::clone(&self.trace)
    }

    /// Drains and returns the recorded operations.
    pub fn take_trace(&self) -> Vec<StoreOp> {
        std::mem::take(&mut *self.trace.lock().expect("trace poisoned"))
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: BlockStore> BlockStore for TraceStore<S> {
    fn read_block(&mut self, lbn: u64, class: BlockClass) -> Segment {
        self.trace.lock().expect("trace poisoned").push(StoreOp {
            lbn,
            class,
            is_write: false,
        });
        self.inner.read_block(lbn, class)
    }

    fn write_block(&mut self, lbn: u64, class: BlockClass, data: &Segment) {
        self.trace.lock().expect("trace poisoned").push(StoreOp {
            lbn,
            class,
            is_write: true,
        });
        self.inner.write_block(lbn, class, data);
    }

    fn block_count(&self) -> u64 {
        self.inner.block_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_blocks_are_deterministic_and_distinct() {
        assert_eq!(synthetic_block(5), synthetic_block(5));
        assert_ne!(synthetic_block(5), synthetic_block(6));
        assert_eq!(synthetic_block(0).len(), BLOCK_SIZE);
    }

    #[test]
    fn mem_store_read_write() {
        let mut s = MemStore::new(16);
        assert_eq!(s.block_count(), 16);
        assert_eq!(s.read_block(3, BlockClass::Data).as_slice(), &synthetic_block(3)[..]);
        let data = Segment::from_vec(vec![7u8; BLOCK_SIZE]);
        s.write_block(3, BlockClass::Data, &data);
        assert_eq!(s.read_block(3, BlockClass::Data), data);
        assert_eq!(s.written_blocks(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mem_store_bounds_checked() {
        MemStore::new(4).read_block(4, BlockClass::Meta);
    }

    #[test]
    #[should_panic(expected = "whole blocks")]
    fn mem_store_rejects_partial_writes() {
        MemStore::new(4).write_block(0, BlockClass::Data, &Segment::from_vec(vec![1, 2, 3]));
    }

    #[test]
    fn trace_store_records_ops() {
        let mut s = TraceStore::new(MemStore::new(8));
        s.read_block(1, BlockClass::Meta);
        s.write_block(2, BlockClass::Data, &Segment::zeroed(BLOCK_SIZE));
        let t = s.take_trace();
        assert_eq!(
            t,
            vec![
                StoreOp {
                    lbn: 1,
                    class: BlockClass::Meta,
                    is_write: false
                },
                StoreOp {
                    lbn: 2,
                    class: BlockClass::Data,
                    is_write: true
                },
            ]
        );
        assert!(s.take_trace().is_empty(), "take drains");
    }

    #[test]
    fn trace_handle_shares_state() {
        let mut s = TraceStore::new(MemStore::new(8));
        let h = s.trace_handle();
        s.read_block(0, BlockClass::Meta);
        assert_eq!(h.lock().expect("trace").len(), 1);
    }
}
