//! Inodes: on-disk encoding and block-map geometry.
//!
//! Each inode maps file block indices to volume LBNs through 16 direct
//! pointers, one single-indirect block, and two double-indirect blocks —
//! enough for files slightly over 2 GiB, covering the paper's 2 GB
//! sequential-read workload (§5.3).

use crate::error::FsError;
use crate::BLOCK_SIZE;

/// An inode number.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ino(pub u32);

impl std::fmt::Display for Ino {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ino:{}", self.0)
    }
}

/// Object type stored in an inode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FileType {
    /// Regular file: contents are *regular data* to NCache.
    #[default]
    Regular,
    /// Directory: contents are metadata.
    Directory,
}

/// Direct pointers per inode.
pub const NDIRECT: usize = 16;
/// Pointers per indirect block.
pub const PTRS_PER_BLOCK: usize = BLOCK_SIZE / 8;
/// Double-indirect pointers per inode.
pub const NDOUBLE: usize = 2;
/// Encoded inode size; 16 inodes fit in one block.
pub const INODE_SIZE: usize = 256;
/// Inodes per block.
pub const INODES_PER_BLOCK: usize = BLOCK_SIZE / INODE_SIZE;

/// Maximum file size in blocks.
pub const MAX_FILE_BLOCKS: u64 =
    NDIRECT as u64 + PTRS_PER_BLOCK as u64 + (NDOUBLE * PTRS_PER_BLOCK * PTRS_PER_BLOCK) as u64;

/// LBN value meaning "no block mapped".
pub const NO_BLOCK: u64 = 0;

/// Where a file block index falls in the inode's block map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockPath {
    /// `direct[slot]`.
    Direct {
        /// Index into the direct array.
        slot: usize,
    },
    /// `single → [slot]`.
    Single {
        /// Index within the single-indirect block.
        slot: usize,
    },
    /// `double[which] → [outer] → [inner]`.
    Double {
        /// Which double-indirect root.
        which: usize,
        /// Slot in the first-level block.
        outer: usize,
        /// Slot in the second-level block.
        inner: usize,
    },
}

/// Resolves a file block index to its place in the map.
///
/// # Errors
///
/// [`FsError::InvalidRange`] beyond [`MAX_FILE_BLOCKS`].
pub fn block_path(index: u64) -> Result<BlockPath, FsError> {
    let p = PTRS_PER_BLOCK as u64;
    if index < NDIRECT as u64 {
        return Ok(BlockPath::Direct {
            slot: index as usize,
        });
    }
    let index = index - NDIRECT as u64;
    if index < p {
        return Ok(BlockPath::Single {
            slot: index as usize,
        });
    }
    let index = index - p;
    let per_double = p * p;
    let which = index / per_double;
    if which >= NDOUBLE as u64 {
        return Err(FsError::InvalidRange);
    }
    let rem = index % per_double;
    Ok(BlockPath::Double {
        which: which as usize,
        outer: (rem / p) as usize,
        inner: (rem % p) as usize,
    })
}

/// An in-memory inode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Inode {
    /// Object type.
    pub ftype: FileType,
    /// Size in bytes.
    pub size: u64,
    /// Modification counter (advances on every write).
    pub mtime: u32,
    /// Direct block pointers ([`NO_BLOCK`] = unmapped).
    pub direct: [u64; NDIRECT],
    /// Single-indirect block pointer.
    pub single: u64,
    /// Double-indirect block pointers.
    pub double: [u64; NDOUBLE],
}

impl Inode {
    /// A fresh, empty inode of the given type.
    pub fn new(ftype: FileType) -> Self {
        Inode {
            ftype,
            size: 0,
            mtime: 0,
            direct: [NO_BLOCK; NDIRECT],
            single: NO_BLOCK,
            double: [NO_BLOCK; NDOUBLE],
        }
    }

    /// Size in whole-or-partial blocks.
    pub fn size_blocks(&self) -> u64 {
        (self.size).div_ceil(BLOCK_SIZE as u64)
    }

    /// Encodes into `out` (exactly [`INODE_SIZE`] bytes are written).
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than [`INODE_SIZE`].
    pub fn encode_into(&self, out: &mut [u8]) {
        assert!(out.len() >= INODE_SIZE, "inode buffer too small");
        out[..INODE_SIZE].fill(0);
        out[0] = match self.ftype {
            FileType::Regular => 1,
            FileType::Directory => 2,
        };
        out[8..16].copy_from_slice(&self.size.to_le_bytes());
        out[16..20].copy_from_slice(&self.mtime.to_le_bytes());
        let mut at = 24;
        for d in self.direct {
            out[at..at + 8].copy_from_slice(&d.to_le_bytes());
            at += 8;
        }
        out[at..at + 8].copy_from_slice(&self.single.to_le_bytes());
        at += 8;
        for d in self.double {
            out[at..at + 8].copy_from_slice(&d.to_le_bytes());
            at += 8;
        }
    }

    /// Decodes from `raw`.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupt`] if the type byte is invalid (including zero,
    /// which marks a free inode slot).
    pub fn decode(raw: &[u8]) -> Result<Inode, FsError> {
        if raw.len() < INODE_SIZE {
            return Err(FsError::Corrupt("short inode"));
        }
        let ftype = match raw[0] {
            1 => FileType::Regular,
            2 => FileType::Directory,
            _ => return Err(FsError::Corrupt("inode type")),
        };
        let get = |at: usize| u64::from_le_bytes(raw[at..at + 8].try_into().expect("8 bytes"));
        let mut direct = [NO_BLOCK; NDIRECT];
        let mut at = 24;
        for d in &mut direct {
            *d = get(at);
            at += 8;
        }
        let single = get(at);
        at += 8;
        let mut double = [NO_BLOCK; NDOUBLE];
        for d in &mut double {
            *d = get(at);
            at += 8;
        }
        Ok(Inode {
            ftype,
            size: get(8),
            mtime: u32::from_le_bytes(raw[16..20].try_into().expect("4 bytes")),
            direct,
            single,
            double,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::gen::*;
    use check::{prop_assert_eq, property};

    #[test]
    fn geometry_covers_two_gigabytes() {
        assert_eq!(PTRS_PER_BLOCK, 512);
        assert_eq!(MAX_FILE_BLOCKS, 16 + 512 + 2 * 512 * 512);
        let max_bytes = MAX_FILE_BLOCKS * BLOCK_SIZE as u64;
        assert!(max_bytes > 2 * 1024 * 1024 * 1024, "max = {max_bytes}");
        assert_eq!(INODES_PER_BLOCK, 16);
    }

    #[test]
    fn block_path_boundaries() {
        assert_eq!(block_path(0), Ok(BlockPath::Direct { slot: 0 }));
        assert_eq!(block_path(15), Ok(BlockPath::Direct { slot: 15 }));
        assert_eq!(block_path(16), Ok(BlockPath::Single { slot: 0 }));
        assert_eq!(block_path(16 + 511), Ok(BlockPath::Single { slot: 511 }));
        assert_eq!(
            block_path(16 + 512),
            Ok(BlockPath::Double {
                which: 0,
                outer: 0,
                inner: 0
            })
        );
        assert_eq!(
            block_path(16 + 512 + 512 * 512),
            Ok(BlockPath::Double {
                which: 1,
                outer: 0,
                inner: 0
            })
        );
        assert_eq!(
            block_path(MAX_FILE_BLOCKS - 1),
            Ok(BlockPath::Double {
                which: 1,
                outer: 511,
                inner: 511
            })
        );
        assert_eq!(block_path(MAX_FILE_BLOCKS), Err(FsError::InvalidRange));
    }

    #[test]
    fn inode_round_trip() {
        let mut ino = Inode::new(FileType::Regular);
        ino.size = 123_456_789;
        ino.mtime = 42;
        ino.direct[0] = 100;
        ino.direct[15] = 200;
        ino.single = 300;
        ino.double[1] = 400;
        let mut buf = [0u8; INODE_SIZE];
        ino.encode_into(&mut buf);
        assert_eq!(Inode::decode(&buf), Ok(ino));
    }

    #[test]
    fn directory_round_trip() {
        let ino = Inode::new(FileType::Directory);
        let mut buf = [0u8; INODE_SIZE];
        ino.encode_into(&mut buf);
        assert_eq!(Inode::decode(&buf).expect("valid").ftype, FileType::Directory);
    }

    #[test]
    fn free_slot_decodes_as_corrupt() {
        // All-zero slots mark free inodes; decode refuses them.
        assert_eq!(Inode::decode(&[0u8; INODE_SIZE]), Err(FsError::Corrupt("inode type")));
        assert_eq!(Inode::decode(&[1u8; 10]), Err(FsError::Corrupt("short inode")));
    }

    #[test]
    fn size_blocks_rounds_up() {
        let mut ino = Inode::new(FileType::Regular);
        assert_eq!(ino.size_blocks(), 0);
        ino.size = 1;
        assert_eq!(ino.size_blocks(), 1);
        ino.size = BLOCK_SIZE as u64;
        assert_eq!(ino.size_blocks(), 1);
        ino.size = BLOCK_SIZE as u64 + 1;
        assert_eq!(ino.size_blocks(), 2);
    }

    property! {
        fn prop_inode_round_trip(
            size in any_u64(),
            mtime in any_u32(),
            d0 in any_u64(),
            single in any_u64(),
        ) {
            let mut ino = Inode::new(FileType::Regular);
            ino.size = size;
            ino.mtime = mtime;
            ino.direct[7] = d0;
            ino.single = single;
            let mut buf = [0u8; INODE_SIZE];
            ino.encode_into(&mut buf);
            prop_assert_eq!(Inode::decode(&buf), Ok(ino));
        }

        fn prop_block_path_total_order(idx in ints(0u64..MAX_FILE_BLOCKS)) {
            // Every in-range index resolves, and the mapping is injective:
            // re-deriving the index from the path returns `idx`.
            let p = PTRS_PER_BLOCK as u64;
            let back = match block_path(idx).expect("in range") {
                BlockPath::Direct { slot } => slot as u64,
                BlockPath::Single { slot } => NDIRECT as u64 + slot as u64,
                BlockPath::Double { which, outer, inner } => {
                    NDIRECT as u64 + p + which as u64 * p * p + outer as u64 * p + inner as u64
                }
            };
            prop_assert_eq!(back, idx);
        }
    }
}
