//! Epoch recency stamps for the lane-parallel data plane.
//!
//! The sequential cache orders chunks by a single monotone counter: each
//! access takes the next integer, so "least recently used" is simply the
//! smallest stamp. Under the parallel engine, lanes race for that counter
//! and the resulting order would depend on thread interleaving. Epoch
//! windows remove the race from the *order* while keeping the counter's
//! byte-exact sequential behaviour:
//!
//! * the engine partitions a run into **epochs** (one per op round) and
//!   gives each lane a seeded **tie rank** ([`tie_ranks`]) inside the
//!   epoch;
//! * before serving an op, the lane's worker thread enters a window
//!   ([`enter_window`]) whose base stamp packs `(epoch, tie)` into the
//!   high bits; every recency stamp the cache draws inside the window is
//!   `base + k` for a per-window cursor `k` — a pure function of the
//!   lane's program order, not of thread scheduling;
//! * a chunk touched by several lanes keeps the **maximum** stamp over its
//!   accesses (the cache promotes via max), so its final LRU position is a
//!   function of the *multiset* of accesses — order-independent;
//! * outside any window the source falls back to its atomic fetch-add,
//!   which is byte-identical to the old `Cell` counter on one thread.
//!
//! Epoch stamps start at `1 << 32`, far above anything the global
//! fetch-add clock reaches in a run, so windowed and plain stamps never
//! collide; after a parallel phase the engine advances the global clock
//! past the largest issued stamp (`SeqSource::advance_past`, reachable as
//! `NcacheModule::advance_clock_past`) so subsequent sequential accesses
//! still sort as most recent.
//!
//! The module also keeps a thread-local **ops tally**: the cache bumps it
//! once per counted management operation (lookup, insertion, remap), so a
//! lane can measure exactly the operations *it* performed — including
//! substitution work done outside the rig lock — without reading the
//! globally shared counters that other lanes are mutating concurrently.

use std::cell::Cell;

/// Stamps issued inside epoch windows live at or above this base, so they
/// always sort after plain fetch-add stamps from the sequential clock.
pub const EPOCH_BASE: u64 = 1 << 32;

/// Maximum recency stamps a single window may issue (cursor width).
pub const WINDOW_CAPACITY: u64 = 1 << 16;

/// The window's 16-bit cursor space is split in two: NCache stamps climb
/// from 0, FS-cache stamps climb from this offset. The two caches never
/// compare stamps against each other, so each half only has to be
/// internally ordered — and both are pure functions of the lane's program
/// order.
pub const FS_CURSOR_BASE: u64 = 1 << 15;

thread_local! {
    static WINDOW: Cell<Option<u64>> = const { Cell::new(None) };
    static CURSOR: Cell<u64> = const { Cell::new(0) };
    static FS_CURSOR: Cell<u64> = const { Cell::new(0) };
    static TALLY: Cell<u64> = const { Cell::new(0) };
}

/// Packs an `(epoch, tie)` pair into a window base stamp: epoch in the
/// high bits, the lane's tie rank in bits 16..32, and a zeroed cursor.
/// Stamps from `(e, t)` sort before stamps from `(e', t')` whenever
/// `(e, t) < (e', t')` lexicographically — the deterministic merge order
/// of the parallel engine.
pub fn stamp_base(epoch: u64, tie: u64) -> u64 {
    assert!(tie < WINDOW_CAPACITY, "tie rank {tie} exceeds 16 bits");
    ((epoch + 1) << 32) | (tie << 16)
}

/// Seeded tie ranks for `lanes` lanes: lane `i`'s rank in the permutation
/// obtained by sorting lanes on `mix64(seed ^ lane)`. Deterministic for a
/// given `(seed, lanes)`, uniform-ish across seeds — the "seeded
/// tie-breaking" knob that makes parallel results reproducible at any
/// thread count while still letting the schedule-exploration property
/// shuffle which lane wins ties.
pub fn tie_ranks(seed: u64, lanes: usize) -> Vec<u64> {
    let mut order: Vec<usize> = (0..lanes).collect();
    order.sort_unstable_by_key(|&lane| (crate::shards::mix64(seed ^ lane as u64), lane));
    let mut ranks = vec![0u64; lanes];
    for (rank, lane) in order.into_iter().enumerate() {
        ranks[lane] = rank as u64;
    }
    ranks
}

/// RAII guard for an epoch window: restores the previous window (usually
/// none) and cursor on drop, so windows nest safely and a panicking lane
/// cannot leak a window into unrelated code.
#[derive(Debug)]
pub struct WindowGuard {
    prev_window: Option<u64>,
    prev_cursor: u64,
    prev_fs_cursor: u64,
}

/// Enters an epoch window on the current thread: until the returned guard
/// drops, every recency stamp the cache draws on this thread is
/// `base + k` for a fresh cursor `k` starting at 0.
pub fn enter_window(base: u64) -> WindowGuard {
    let prev_window = WINDOW.with(|w| w.replace(Some(base)));
    let prev_cursor = CURSOR.with(|c| c.replace(0));
    let prev_fs_cursor = FS_CURSOR.with(|c| c.replace(0));
    WindowGuard {
        prev_window,
        prev_cursor,
        prev_fs_cursor,
    }
}

impl Drop for WindowGuard {
    fn drop(&mut self) {
        WINDOW.with(|w| w.set(self.prev_window));
        CURSOR.with(|c| c.set(self.prev_cursor));
        FS_CURSOR.with(|c| c.set(self.prev_fs_cursor));
    }
}

/// The next stamp of the current thread's epoch window, or `None` when no
/// window is active (the sequential case).
pub(crate) fn window_stamp() -> Option<u64> {
    WINDOW.with(|w| {
        w.get().map(|base| {
            let k = CURSOR.with(|c| {
                let k = c.get();
                c.set(k + 1);
                k
            });
            assert!(k < FS_CURSOR_BASE, "epoch window issued > 2^15 stamps");
            base + k
        })
    })
}

/// The FS-cache half of the current window, or `None` when no window is
/// active. Draws from a separate cursor starting at [`FS_CURSOR_BASE`],
/// so FS recency stamps inside a lane window are schedule-invariant too —
/// without perturbing the NCache cursor or the ops tally the parallel
/// engine reconciles against sequential counts.
pub fn window_fs_stamp() -> Option<u64> {
    WINDOW.with(|w| {
        w.get().map(|base| {
            let k = FS_CURSOR.with(|c| {
                let k = c.get();
                c.set(k + 1);
                k
            });
            assert!(k < FS_CURSOR_BASE, "epoch window issued > 2^15 FS stamps");
            base + FS_CURSOR_BASE + k
        })
    })
}

/// Counts one cache management operation on the current thread's tally.
pub(crate) fn bump_tally() {
    TALLY.with(|t| t.set(t.get() + 1));
}

/// Drains the current thread's ops tally: returns the operations counted
/// since the last take and resets it to zero.
pub fn take_tally() -> u64 {
    TALLY.with(|t| t.replace(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_base_orders_epoch_major_then_tie() {
        assert!(stamp_base(0, 0) < stamp_base(0, 1));
        assert!(stamp_base(0, 65535) < stamp_base(1, 0));
        assert!(stamp_base(3, 2) < stamp_base(4, 0));
        // All window stamps clear the sequential clock's range.
        assert!(stamp_base(0, 0) >= EPOCH_BASE);
    }

    #[test]
    fn tie_ranks_are_a_permutation_and_seed_sensitive() {
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            let ranks = tie_ranks(seed, 16);
            let mut sorted = ranks.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..16).collect::<Vec<u64>>(), "permutation");
            assert_eq!(ranks, tie_ranks(seed, 16), "deterministic");
        }
        assert_ne!(tie_ranks(1, 16), tie_ranks(2, 16), "seeds shuffle ties");
    }

    #[test]
    fn windows_issue_consecutive_stamps_and_restore_on_drop() {
        assert_eq!(window_stamp(), None, "no window outside a guard");
        let base = stamp_base(5, 3);
        {
            let _g = enter_window(base);
            assert_eq!(window_stamp(), Some(base));
            assert_eq!(window_stamp(), Some(base + 1));
            {
                let inner = stamp_base(6, 0);
                let _g2 = enter_window(inner);
                assert_eq!(window_stamp(), Some(inner));
            }
            // The outer window resumes exactly where it left off.
            assert_eq!(window_stamp(), Some(base + 2));
        }
        assert_eq!(window_stamp(), None);
    }

    #[test]
    fn fs_stamps_draw_from_their_own_half_of_the_window() {
        assert_eq!(window_fs_stamp(), None, "no window outside a guard");
        let base = stamp_base(2, 1);
        let _g = enter_window(base);
        // Interleaved draws: each cache's half advances independently.
        assert_eq!(window_stamp(), Some(base));
        assert_eq!(window_fs_stamp(), Some(base + FS_CURSOR_BASE));
        assert_eq!(window_stamp(), Some(base + 1));
        assert_eq!(window_fs_stamp(), Some(base + FS_CURSOR_BASE + 1));
        // Both halves stay inside the window's 16-bit cursor space.
        assert!(base + FS_CURSOR_BASE + 1 < base + WINDOW_CAPACITY);
    }

    #[test]
    fn tally_counts_and_drains_per_thread() {
        take_tally();
        bump_tally();
        bump_tally();
        assert_eq!(take_tally(), 2);
        assert_eq!(take_tally(), 0, "drained");
        // Another thread's tally is independent.
        bump_tally();
        let other = std::thread::spawn(take_tally).join().expect("join");
        assert_eq!(other, 0);
        assert_eq!(take_tally(), 1);
    }
}
