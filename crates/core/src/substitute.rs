//! Packet substitution: swapping cached payload for key-carrying
//! placeholders at the driver boundary (§3.2 step 6).
//!
//! An outgoing NFS read reply (or kHTTPd response body) built by the
//! logical-copy paths carries placeholder blocks — junk payload whose head
//! is a [`KeyStamp`]. Just before transmission, the NCache module resolves
//! each stamp (FHO cache first, then LBN) and splices the cached network
//! buffers into the packet in place of the placeholder. No payload bytes
//! move: substitution is pointer surgery, charged to the CPU model per
//! packet, not per byte.

use netbuf::key::KeyStamp;
use netbuf::{NetBuf, Segment};

use crate::shards::NetCacheShards;

/// What substitution did to one outgoing packet.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubstitutionReport {
    /// Placeholder segments replaced with cached payload.
    pub substituted: u64,
    /// Segments passed through untouched (headers, metadata, real data).
    pub passed_through: u64,
    /// Placeholder segments whose key missed the cache — the junk goes out
    /// as-is. Must be zero in a correctly configured server; counted so
    /// tests can assert on it.
    pub missing: u64,
}

impl SubstitutionReport {
    /// Merges another report into this one.
    pub fn absorb(&mut self, other: SubstitutionReport) {
        self.substituted += other.substituted;
        self.passed_through += other.passed_through;
        self.missing += other.missing;
    }
}

/// Clips a shared segment list to exactly `len` bytes.
pub(crate) fn clip_segments(segs: Vec<Segment>, len: usize) -> Vec<Segment> {
    let mut out = Vec::with_capacity(segs.len());
    let mut remaining = len;
    for seg in segs {
        if remaining == 0 {
            break;
        }
        let take = seg.len().min(remaining);
        out.push(if take == seg.len() {
            seg
        } else {
            seg.slice(0, take)
        });
        remaining -= take;
    }
    out
}

/// Substitutes every stamped placeholder segment in `buf`'s payload with
/// the corresponding cached chunk. Non-stamped segments pass through.
///
/// # Examples
///
/// ```
/// use ncache::shards::NetCacheShards;
/// use ncache::substitute::substitute_payload;
/// use netbuf::key::{KeyStamp, Lbn};
/// use netbuf::{BufPool, CopyLedger, NetBuf, Segment};
///
/// let cache = NetCacheShards::new(BufPool::new(1 << 20), 0, 4);
/// cache.insert_lbn(Lbn(3), vec![Segment::from_vec(vec![7u8; 4096])], 4096, false)?;
///
/// // Build a placeholder block as the logical read path would.
/// let mut junk = vec![0u8; 4096];
/// KeyStamp::new().with_lbn(Lbn(3)).encode_into(&mut junk);
/// let ledger = CopyLedger::new();
/// let mut pkt = NetBuf::new(&ledger);
/// pkt.append_segment(Segment::from_vec(junk));
///
/// let report = substitute_payload(&mut pkt, &cache);
/// assert_eq!(report.substituted, 1);
/// assert_eq!(pkt.copy_payload_to_vec(), vec![7u8; 4096]);
/// # Ok::<(), ncache::CacheFull>(())
/// ```
pub fn substitute_payload(buf: &mut NetBuf, cache: &NetCacheShards) -> SubstitutionReport {
    let mut report = SubstitutionReport::default();
    let old = buf.take_payload();
    let mut new = Vec::with_capacity(old.len());
    for seg in old {
        let stamp = if seg.len() >= KeyStamp::LEN {
            KeyStamp::decode(seg.as_slice())
        } else {
            None
        };
        match stamp {
            Some(stamp) if stamp.is_keyed() => match cache.resolve(&stamp) {
                Some((_, cached)) => {
                    report.substituted += 1;
                    new.extend(clip_segments(cached, seg.len()));
                }
                None => {
                    report.missing += 1;
                    new.push(seg);
                }
            },
            _ => {
                report.passed_through += 1;
                new.push(seg);
            }
        }
    }
    buf.replace_payload(new);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbuf::key::{Fho, FileHandle, Lbn};
    use netbuf::{BufPool, CopyLedger};

    fn cache() -> NetCacheShards {
        // Multi-shard on purpose: every substitution test doubles as a
        // cross-shard resolution test.
        NetCacheShards::new(BufPool::new(1 << 22), 0, 4)
    }

    fn placeholder(stamp: KeyStamp, len: usize) -> Segment {
        let mut junk = vec![0u8; len];
        stamp.encode_into(&mut junk);
        Segment::from_vec(junk)
    }

    #[test]
    fn substitutes_lbn_placeholder() {
        let c = cache();
        c.insert_lbn(Lbn(1), vec![Segment::from_vec(vec![5; 4096])], 4096, false)
            .expect("fits");
        let ledger = CopyLedger::new();
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(placeholder(KeyStamp::new().with_lbn(Lbn(1)), 4096));
        pkt.push_header(&[0xAB]);
        let before = ledger.snapshot();
        let r = substitute_payload(&mut pkt, &c);
        assert_eq!(r.substituted, 1);
        assert_eq!(r.missing, 0);
        let d = ledger.snapshot().delta_since(&before);
        assert_eq!(d.payload_copies, 0, "substitution moves no payload");
        assert_eq!(pkt.header(), &[0xAB], "headers untouched");
        assert_eq!(pkt.copy_payload_to_vec(), vec![5u8; 4096]);
    }

    #[test]
    fn fho_wins_over_stale_lbn() {
        let c = cache();
        c.insert_lbn(Lbn(1), vec![Segment::from_vec(vec![0xAA; 4096])], 4096, false)
            .expect("fits");
        let fho = Fho::new(FileHandle(2), 0);
        c.insert_fho(fho, vec![Segment::from_vec(vec![0xBB; 4096])], 4096)
            .expect("fits");
        let ledger = CopyLedger::new();
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(placeholder(
            KeyStamp::new().with_fho(fho).with_lbn(Lbn(1)),
            4096,
        ));
        substitute_payload(&mut pkt, &c);
        assert_eq!(
            pkt.copy_payload_to_vec(),
            vec![0xBB; 4096],
            "freshest data substituted"
        );
    }

    #[test]
    fn partial_tail_blocks_are_clipped() {
        let c = cache();
        c.insert_lbn(Lbn(1), vec![Segment::from_vec(vec![9; 4096])], 4096, false)
            .expect("fits");
        let ledger = CopyLedger::new();
        let mut pkt = NetBuf::new(&ledger);
        // The reply's last block is clipped to 100 bytes at end of file.
        pkt.append_segment(placeholder(KeyStamp::new().with_lbn(Lbn(1)), 100));
        substitute_payload(&mut pkt, &c);
        assert_eq!(pkt.payload_len(), 100);
        assert_eq!(pkt.copy_payload_to_vec(), vec![9u8; 100]);
    }

    #[test]
    fn unstamped_segments_pass_through() {
        let c = cache();
        let ledger = CopyLedger::new();
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(Segment::from_vec(vec![1, 2, 3, 4]));
        pkt.append_segment(Segment::from_vec(b"HTTP/1.0 200 OK\r\nContent-Length: 0\r\n\r\n".to_vec()));
        let r = substitute_payload(&mut pkt, &c);
        assert_eq!(r.substituted, 0);
        assert_eq!(r.passed_through, 2);
        assert_eq!(pkt.peek(0, 4), vec![1, 2, 3, 4]);
    }

    #[test]
    fn missing_key_is_counted_and_left_alone() {
        let c = cache();
        let ledger = CopyLedger::new();
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(placeholder(KeyStamp::new().with_lbn(Lbn(404)), 4096));
        let r = substitute_payload(&mut pkt, &c);
        assert_eq!(r.missing, 1);
        assert_eq!(r.substituted, 0);
        assert_eq!(pkt.payload_len(), 4096);
    }

    #[test]
    fn mixed_payload_multiple_blocks() {
        let c = cache();
        for i in 0..3u64 {
            c.insert_lbn(
                Lbn(i),
                vec![Segment::from_vec(vec![i as u8 + 1; 4096])],
                4096,
                false,
            )
            .expect("fits");
        }
        let ledger = CopyLedger::new();
        let mut pkt = NetBuf::new(&ledger);
        for i in 0..3u64 {
            pkt.append_segment(placeholder(KeyStamp::new().with_lbn(Lbn(i)), 4096));
        }
        let r = substitute_payload(&mut pkt, &c);
        assert_eq!(r.substituted, 3);
        let bytes = pkt.copy_payload_to_vec();
        assert_eq!(bytes.len(), 3 * 4096);
        assert_eq!(bytes[0], 1);
        assert_eq!(bytes[4096], 2);
        assert_eq!(bytes[8192], 3);
    }

    #[test]
    fn tiny_segments_cannot_be_stamps() {
        let c = cache();
        let ledger = CopyLedger::new();
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(Segment::from_vec(vec![1, 2])); // < KeyStamp::LEN
        let r = substitute_payload(&mut pkt, &c);
        assert_eq!(r.passed_through, 1);
    }

    #[test]
    fn report_absorb() {
        let mut a = SubstitutionReport {
            substituted: 1,
            passed_through: 2,
            missing: 0,
        };
        a.absorb(SubstitutionReport {
            substituted: 3,
            passed_through: 0,
            missing: 1,
        });
        assert_eq!(a.substituted, 4);
        assert_eq!(a.passed_through, 2);
        assert_eq!(a.missing, 1);
    }

    #[test]
    fn clip_segments_edge_cases() {
        let segs = vec![Segment::from_vec(vec![1; 10]), Segment::from_vec(vec![2; 10])];
        assert_eq!(clip_segments(segs.clone(), 0).len(), 0);
        let c = clip_segments(segs.clone(), 15);
        assert_eq!(c.iter().map(Segment::len).sum::<usize>(), 15);
        let c = clip_segments(segs, 20);
        assert_eq!(c.iter().map(Segment::len).sum::<usize>(), 20);
    }
}
