//! Hash-sharded front for the two-part network-centric cache.
//!
//! A pass-through server fielding many simultaneous clients wants to touch
//! only one lock-striped partition of the buffer hash per request (the
//! kHTTPd/TUX lineage). [`NetCacheShards`] gives the reproduction that
//! shape — N independent LBN+FHO shards selected by a deterministic
//! [`shard_of`] — while preserving, byte for byte, the behaviour of the
//! single [`NetCache`]:
//!
//! * **one pool**: every shard pins from the same [`BufPool`], so capacity
//!   pressure is a global property, not N private budgets;
//! * **one recency clock**: shards share a [`SeqSource`], so "least
//!   recently used" is defined across the whole shard set;
//! * **global victim selection**: when an insert cannot pin, the shard set
//!   reclaims from whichever shard holds the globally oldest *reclaimable*
//!   chunk — the exact chunk the single cache would have evicted;
//! * **cross-shard remap**: `remap(fho, lbn)` moves the chunk from the
//!   FHO key's shard to the LBN key's shard (the pin travels with it) and
//!   still overwrites any stale LBN copy wherever it lives.
//!
//! Since the concurrent-data-plane refactor the shard set is an
//! internally locked **handle**: each shard sits behind its own
//! `RwLock`, the handle is `Clone + Send + Sync`, and every method takes
//! `&self`. Lane worker threads clone the handle and touch only the lock
//! of the shard a key hashes to. **Lookups and resolves take the shard's
//! read lock**: hit promotion is an atomic `fetch_max` on the entry's
//! recency stamp and the counters are atomics, so concurrent cache-hit
//! reads of one shard proceed fully in parallel (the LRU order index is
//! lazy; mutators normalize it against the true stamps before picking
//! victims — see [`NetCache::lookup`]). Mutations (insert, remap,
//! reclaim, invalidate, checksum/dirty metadata) take the write lock.
//! The locking discipline is strict: no method holds two shard locks at
//! once, with one exception — a cross-shard [`NetCacheShards::remap`]
//! write-locks the FHO and LBN shards together (in shard-index order, so
//! lock order is acyclic) so a concurrent resolve can never observe the
//! remove→insert gap while a chunk migrates. On a single thread every
//! lock is uncontended and the behaviour is byte-identical to the
//! pre-refactor shard set.
//!
//! The shard-invariance property test (tests/shard_invariance.rs) pins all
//! of this down: for arbitrary workloads, N ∈ {1, 2, 8} shards produce
//! identical merged stats, hit ratios, read-back bytes, and writeback
//! sequences as the single-shard oracle.

use std::fmt;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use netbuf::key::{CacheKey, Fho, Lbn};
use netbuf::{BufPool, Segment};

use crate::cache::{CacheFull, NetCache, NetCacheStats, SeqSource, WritebackChunk};

pub(crate) fn mix64(mut x: u64) -> u64 {
    // splitmix64 finalizer — the workspace's standard seed/hash mixer.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The shard a key lives in, for a set of `shards` shards. Deterministic
/// across runs and platforms (no `RandomState`): the same key always maps
/// to the same shard, which the determinism gates rely on.
pub fn shard_of(key: CacheKey, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be positive");
    let h = match key {
        CacheKey::Lbn(Lbn(block)) => mix64(block),
        CacheKey::Fho(Fho { fh, offset }) => mix64(mix64(fh.0) ^ offset),
    };
    (h % shards as u64) as usize
}

/// N independent LBN+FHO cache shards behaving, in the aggregate, exactly
/// like one [`NetCache`] (see the module docs for the sharing and locking
/// discipline). Cloning yields another handle to the same shard set.
///
/// # Examples
///
/// ```
/// use ncache::NetCacheShards;
/// use netbuf::key::Lbn;
/// use netbuf::{BufPool, Segment};
///
/// let cache = NetCacheShards::new(BufPool::new(1 << 20), 256, 8);
/// cache.insert_lbn(Lbn(9), vec![Segment::from_vec(vec![1; 4096])], 4096, false)?;
/// assert!(cache.lookup(Lbn(9).into()).is_some());
/// assert_eq!(cache.stats().hits, 1);
/// # Ok::<(), ncache::CacheFull>(())
/// ```
#[derive(Clone)]
pub struct NetCacheShards {
    shards: Arc<Vec<RwLock<NetCache>>>,
    pool: BufPool,
    fho_first: Arc<std::sync::atomic::AtomicBool>,
    seq: SeqSource,
}

impl NetCacheShards {
    /// A shard set over `shards` partitions, all pinning from one shared
    /// `pool` with `per_chunk_overhead` descriptor bytes per chunk.
    /// `shards` must be at least 1.
    pub fn new(pool: BufPool, per_chunk_overhead: u64, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        let seq = SeqSource::default();
        let parts = (0..shards)
            .map(|_| {
                RwLock::new(NetCache::with_seq_source(
                    pool.clone(),
                    per_chunk_overhead,
                    seq.clone(),
                ))
            })
            .collect();
        NetCacheShards {
            shards: Arc::new(parts),
            pool,
            fho_first: Arc::new(std::sync::atomic::AtomicBool::new(true)),
            seq,
        }
    }

    /// Shared access to one shard: lookups, resolves, and every pure
    /// inspection run under this guard, so cache-hit reads in different
    /// lanes never serialize against each other (only against a mutation
    /// of the same shard).
    fn read(&self, shard: usize) -> RwLockReadGuard<'_, NetCache> {
        self.shards[shard].read().expect("cache shard poisoned")
    }

    /// Exclusive access to one shard: inserts, remaps, reclaims, and
    /// metadata mutation.
    fn write(&self, shard: usize) -> RwLockWriteGuard<'_, NetCache> {
        self.shards[shard].write().expect("cache shard poisoned")
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Ablation knob: resolve LBN before FHO (see
    /// [`NetCache::set_resolve_lbn_first`]).
    pub fn set_resolve_lbn_first(&self, lbn_first: bool) {
        self.fho_first
            .store(!lbn_first, std::sync::atomic::Ordering::Relaxed);
    }

    /// Advances the shared recency clock past `stamp`. The parallel
    /// engine calls this after a run with the largest epoch stamp it
    /// could have issued, so later sequential accesses still promote to
    /// most-recently-used.
    pub fn advance_clock_past(&self, stamp: u64) {
        self.seq.advance_past(stamp);
    }

    /// Chunks currently resident across all shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.read(i).len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        (0..self.shards.len()).all(|i| self.read(i).is_empty())
    }

    /// Bytes currently pinned in the shared pool.
    pub fn pinned_bytes(&self) -> u64 {
        self.pool.pinned()
    }

    /// The shared pinned-memory pool.
    pub fn pool(&self) -> &BufPool {
        &self.pool
    }

    /// Attaches one ghost LRU tail, **shared by every shard**, bounded at
    /// `cap` keys. One global tail — not per-shard bounded tails — because
    /// "the last K distinct evicted keys" is only shard-count-invariant
    /// when displacement happens against the global eviction order; the
    /// adaptive split must read the same signal at 1 shard and at 8.
    pub fn enable_ghost(&self, cap: usize) {
        let ghost = Arc::new(std::sync::Mutex::new(crate::adaptive::GhostLru::new(cap)));
        for i in 0..self.shards.len() {
            self.write(i).set_ghost(Arc::clone(&ghost));
        }
    }

    /// Counters of the shared ghost tail, or `None` when no tail is
    /// attached. Shard 0's handle *is* the global tail (all shards share
    /// one `Arc`), so no merging is needed.
    pub fn ghost_stats(&self) -> Option<crate::adaptive::GhostStats> {
        self.read(0).ghost_stats()
    }

    /// Evicts clean chunks in global LRU order until pinned bytes fit the
    /// pool's (possibly just-lowered) capacity. Dirty chunks are never
    /// touched — a tick-time shrink must not schedule writebacks — so the
    /// pool may stay transiently overcommitted until the demand path
    /// drains the dirty tail. Returns the number of chunks evicted.
    pub fn shrink_clean_to_capacity(&self) -> u64 {
        let mut evicted = 0u64;
        while self.pool.pinned() > self.pool.capacity() {
            let victim_shard = (0..self.shards.len())
                .filter_map(|i| self.write(i).clean_head_seq().map(|seq| (seq, i)))
                .min();
            let Some((_, i)) = victim_shard else {
                break; // everything resident is dirty
            };
            if !self.write(i).reclaim_one_clean() {
                break;
            }
            evicted += 1;
        }
        evicted
    }

    /// Merged counters across all shards.
    pub fn stats(&self) -> NetCacheStats {
        let mut merged = NetCacheStats::default();
        for i in 0..self.shards.len() {
            merged.merge(&self.read(i).stats());
        }
        merged
    }

    /// Per-shard counter snapshots, indexed by shard.
    pub fn per_shard_stats(&self) -> Vec<NetCacheStats> {
        (0..self.shards.len()).map(|i| self.read(i).stats()).collect()
    }

    fn shard(&self, key: CacheKey) -> usize {
        shard_of(key, self.shards.len())
    }

    /// Whether `key` is resident (no LRU promotion, no counter change).
    pub fn contains(&self, key: CacheKey) -> bool {
        self.read(self.shard(key)).contains(key)
    }

    /// Whether `key` is resident and dirty.
    pub fn is_dirty(&self, key: CacheKey) -> bool {
        self.read(self.shard(key)).is_dirty(key)
    }

    /// Inserts a chunk arriving from the storage server (iSCSI Data-In).
    ///
    /// # Errors
    ///
    /// [`CacheFull`] when space cannot be reclaimed from any shard. On
    /// success, dirty chunks displaced anywhere in the set are returned
    /// for writeback.
    pub fn insert_lbn(
        &self,
        lbn: Lbn,
        segs: Vec<Segment>,
        len: usize,
        dirty: bool,
    ) -> Result<Vec<WritebackChunk>, CacheFull> {
        self.insert(CacheKey::Lbn(lbn), segs, len, dirty)
    }

    /// Inserts a chunk arriving in an NFS write request. Always dirty.
    ///
    /// # Errors
    ///
    /// [`CacheFull`] as for [`NetCacheShards::insert_lbn`].
    pub fn insert_fho(
        &self,
        fho: Fho,
        segs: Vec<Segment>,
        len: usize,
    ) -> Result<Vec<WritebackChunk>, CacheFull> {
        self.insert(CacheKey::Fho(fho), segs, len, true)
    }

    /// The single cache's insert sequence, with the reclaim loop lifted to
    /// the shard set: the victim is always the globally LRU reclaimable
    /// chunk, whichever shard it lives in. Only one shard lock is held at
    /// a time; the shared pool mediates capacity between racing inserts.
    fn insert(
        &self,
        key: CacheKey,
        segs: Vec<Segment>,
        len: usize,
        dirty: bool,
    ) -> Result<Vec<WritebackChunk>, CacheFull> {
        let target = self.shard(key);
        let need = {
            let mut t = self.write(target);
            t.note_insertion();
            // Replace any existing entry under this key first (its pin
            // frees before the new pin is sized).
            t.remove_entry(key);
            t.chunk_footprint(len)
        };
        let mut writebacks = Vec::new();
        let pin = loop {
            match self.pool.pin(need) {
                Ok(p) => break p,
                Err(_) => {
                    let victim_shard = (0..self.shards.len())
                        .filter_map(|i| self.write(i).reclaimable_head_seq().map(|seq| (seq, i)))
                        .min()
                        .map(|(_, i)| i)
                        .ok_or(CacheFull)?;
                    match self.write(victim_shard).reclaim_one() {
                        Ok(Some(wb)) => writebacks.push(wb),
                        Ok(None) => {}
                        // A racing lane drained this shard between the
                        // scan and the lock; rescan. (Unreachable on one
                        // thread: the scan just saw a reclaimable chunk.)
                        Err(CacheFull) => {}
                    }
                }
            }
        };
        let chunk = crate::chunk::Chunk::new(segs, len, dirty, pin);
        self.write(target).insert_chunk_fresh(key, chunk);
        Ok(writebacks)
    }

    /// Looks `key` up in its shard, promoting it to globally
    /// most-recently-used and returning its payload segments.
    pub fn lookup(&self, key: CacheKey) -> Option<Vec<Segment>> {
        self.read(self.shard(key)).lookup(key)
    }

    /// Resolves a key stamp FHO-first (§3.4), across shards: the FHO and
    /// LBN copies of a block may live in different shards.
    pub fn resolve(&self, stamp: &netbuf::key::KeyStamp) -> Option<(CacheKey, Vec<Segment>)> {
        let fho_key = stamp.fho.map(CacheKey::Fho);
        let lbn_key = stamp.lbn.map(CacheKey::Lbn);
        let fho_first = self.fho_first.load(std::sync::atomic::Ordering::Relaxed);
        let (first, second) = if fho_first {
            (fho_key, lbn_key)
        } else {
            (lbn_key, fho_key)
        };
        for key in [first, second].into_iter().flatten() {
            if let Some(segs) = self.lookup(key) {
                return Some((key, segs));
            }
        }
        None
    }

    /// Remaps an FHO entry to an LBN key on file-system flush, moving the
    /// chunk between shards when the keys hash apart and overwriting any
    /// stale LBN copy. Returns the (still dirty) payload for the outgoing
    /// iSCSI write, or `None` if the FHO entry is absent.
    ///
    /// This is the one two-lock method: the FHO and LBN shards are locked
    /// together, in shard-index order, so concurrent resolves never see
    /// the chunk mid-migration (absent from both shards).
    pub fn remap(&self, fho: Fho, lbn: Lbn) -> Option<Vec<Segment>> {
        let fho_shard = self.shard(CacheKey::Fho(fho));
        let lbn_shard = self.shard(CacheKey::Lbn(lbn));
        if fho_shard == lbn_shard {
            return self.write(fho_shard).remap(fho, lbn);
        }
        // Cross-shard: charge the remap where the FHO entry lives (the
        // merged count matches the single cache either way), drop the
        // stale LBN copy in *its* shard, and move the chunk — its pool pin
        // travels with it, so the shared pool's accounting is unchanged.
        let (lo, hi) = (fho_shard.min(lbn_shard), fho_shard.max(lbn_shard));
        let mut guard_lo = self.write(lo);
        let mut guard_hi = self.write(hi);
        let (fho_cache, lbn_cache) = if fho_shard < lbn_shard {
            (&mut *guard_lo, &mut *guard_hi)
        } else {
            (&mut *guard_hi, &mut *guard_lo)
        };
        fho_cache.note_remap();
        let entry = fho_cache.remove_entry(CacheKey::Fho(fho))?;
        lbn_cache.remove_entry(CacheKey::Lbn(lbn));
        let segs = entry.chunk.share_segments();
        lbn_cache.insert_chunk_fresh(CacheKey::Lbn(lbn), entry.chunk);
        Some(segs)
    }

    /// Marks a chunk clean after its data reached the storage server.
    pub fn mark_clean(&self, key: CacheKey) {
        self.write(self.shard(key)).mark_clean(key);
    }

    /// Records an inheritable checksum on a resident chunk.
    pub fn set_csum(&self, key: CacheKey, csum: u16) {
        self.write(self.shard(key)).set_csum(key, csum);
    }

    /// The stored checksum of a resident chunk.
    pub fn stored_csum(&self, key: CacheKey) -> Option<u16> {
        self.read(self.shard(key)).stored_csum(key)
    }

    /// Removes a chunk outright (no writeback), returning whether it was
    /// resident.
    pub fn invalidate(&self, key: CacheKey) -> bool {
        self.write(self.shard(key)).invalidate(key)
    }

    /// Materialized contents of a resident chunk (integrity checks).
    pub fn chunk_bytes(&self, key: CacheKey) -> Option<Vec<u8>> {
        self.read(self.shard(key)).chunk_bytes(key)
    }

    /// Keys of clean resident chunks in *global* LRU order — shard lists
    /// merged by shared sequence number, so fault injection picks the same
    /// corruption targets at any shard count.
    pub fn clean_keys(&self) -> Vec<CacheKey> {
        let mut tagged: Vec<(u64, CacheKey)> = (0..self.shards.len())
            .flat_map(|i| self.read(i).clean_keys_with_seq())
            .collect();
        tagged.sort_unstable_by_key(|&(seq, _)| seq);
        tagged.into_iter().map(|(_, k)| k).collect()
    }
}

impl fmt::Debug for NetCacheShards {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetCacheShards")
            .field("shards", &self.shards.len())
            .field("chunks", &self.len())
            .field("pinned_bytes", &self.pool.pinned())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbuf::key::{FileHandle, KeyStamp};

    fn seg(tag: u8, len: usize) -> Vec<Segment> {
        vec![Segment::from_vec(vec![tag; len])]
    }

    fn shards(capacity: u64, n: usize) -> NetCacheShards {
        NetCacheShards::new(BufPool::new(capacity), 0, n)
    }

    fn fho(fh: u64, off: u64) -> Fho {
        Fho::new(FileHandle(fh), off)
    }

    #[test]
    fn shard_set_is_a_send_sync_clone_handle() {
        // The point of the locked refactor: lane worker threads share the
        // cache by cloning the handle. (Regression for the `Rc`-era shard
        // set, which was neither `Send` nor `Clone`.)
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<NetCacheShards>();
        let a = shards(1 << 20, 4);
        let b = a.clone();
        a.insert_lbn(Lbn(1), seg(1, 64), 64, false).expect("fits");
        assert!(b.contains(Lbn(1).into()), "clones alias one shard set");
    }

    #[test]
    fn concurrent_inserts_and_lookups_share_one_cache() {
        let c = shards(1 << 22, 8);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = c.clone();
                s.spawn(move || {
                    for b in 0..64u64 {
                        let block = t * 64 + b;
                        c.insert_lbn(Lbn(block), seg(t as u8, 1024), 1024, false)
                            .expect("fits");
                        assert!(c.lookup(Lbn(block).into()).is_some());
                    }
                });
            }
        });
        assert_eq!(c.len(), 256);
        let s = c.stats();
        assert_eq!(s.insertions, 256);
        assert_eq!(s.hits, 256, "every thread hits its own inserts");
    }

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        for n in [1usize, 2, 3, 8, 16] {
            for b in 0..64u64 {
                let k = CacheKey::Lbn(Lbn(b));
                let s = shard_of(k, n);
                assert!(s < n);
                assert_eq!(s, shard_of(k, n), "same key, same shard");
            }
            for f in 0..8u64 {
                for off in [0u64, 4096, 81920] {
                    let k = CacheKey::Fho(fho(f, off));
                    assert!(shard_of(k, n) < n);
                }
            }
        }
        // One shard degenerates to the single cache's routing.
        assert_eq!(shard_of(CacheKey::Lbn(Lbn(123)), 1), 0);
    }

    #[test]
    fn shard_of_spreads_keys() {
        let mut seen = [false; 8];
        for b in 0..256u64 {
            seen[shard_of(CacheKey::Lbn(Lbn(b)), 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "256 blocks touch all 8 shards");
    }

    #[test]
    fn insert_lookup_across_shards() {
        let c = shards(1 << 20, 8);
        for b in 0..16u64 {
            c.insert_lbn(Lbn(b), seg(b as u8, 4096), 4096, false).expect("fits");
        }
        assert_eq!(c.len(), 16);
        for b in 0..16u64 {
            let got = c.lookup(Lbn(b).into()).expect("resident");
            assert_eq!(got[0].as_slice()[0], b as u8);
        }
        let s = c.stats();
        assert_eq!(s.insertions, 16);
        assert_eq!(s.lookups, 16);
        assert_eq!(s.hits, 16);
        assert_eq!(
            s.insertions,
            c.per_shard_stats().iter().map(|p| p.insertions).sum::<u64>()
        );
    }

    #[test]
    fn eviction_picks_the_globally_oldest_victim() {
        // Pool holds two chunks. Insert A then B (different shards with
        // high probability under n=8; the assertion holds regardless):
        // inserting C must evict A — the globally LRU chunk — no matter
        // which shard C lands in.
        let c = shards(8192, 8);
        c.insert_lbn(Lbn(1), seg(1, 4096), 4096, false).expect("fits");
        c.insert_lbn(Lbn(2), seg(2, 4096), 4096, false).expect("fits");
        c.insert_lbn(Lbn(3), seg(3, 4096), 4096, false).expect("evicts");
        assert!(!c.contains(Lbn(1).into()), "globally oldest chunk evicted");
        assert!(c.contains(Lbn(2).into()));
        assert!(c.contains(Lbn(3).into()));
        assert_eq!(c.stats().evicted_clean, 1);
    }

    #[test]
    fn lookup_promotion_is_global() {
        let c = shards(8192, 8);
        c.insert_lbn(Lbn(1), seg(1, 4096), 4096, false).expect("fits");
        c.insert_lbn(Lbn(2), seg(2, 4096), 4096, false).expect("fits");
        c.lookup(Lbn(1).into());
        c.insert_lbn(Lbn(3), seg(3, 4096), 4096, false).expect("evicts");
        assert!(c.contains(Lbn(1).into()), "promoted chunk survives globally");
        assert!(!c.contains(Lbn(2).into()));
    }

    #[test]
    fn cross_shard_remap_moves_chunk_and_overwrites_stale_lbn() {
        let c = shards(1 << 20, 8);
        // A stale LBN copy and a fresher FHO copy; with 8 shards the two
        // keys almost surely hash apart (and the code path handles both).
        c.insert_lbn(Lbn(5), seg(0xAA, 4096), 4096, false).expect("fits");
        c.insert_fho(fho(7, 0), seg(0xBB, 4096), 4096).expect("fits");
        let pinned = c.pinned_bytes();
        let segs = c.remap(fho(7, 0), Lbn(5)).expect("remapped");
        assert_eq!(segs[0].as_slice(), &vec![0xBB; 4096][..]);
        assert!(!c.contains(CacheKey::Fho(fho(7, 0))));
        assert_eq!(c.chunk_bytes(Lbn(5).into()), Some(vec![0xBB; 4096]));
        assert!(c.is_dirty(Lbn(5).into()));
        assert_eq!(c.len(), 1, "stale copy dropped, one chunk remains");
        assert_eq!(
            c.pinned_bytes(),
            pinned - 4096,
            "stale LBN pin released; moved pin travelled with the chunk"
        );
        assert_eq!(c.stats().remaps, 1);
    }

    #[test]
    fn dirty_fho_chunks_are_never_victims_across_shards() {
        let c = shards(8192, 8);
        c.insert_fho(fho(1, 0), seg(1, 4096), 4096).expect("fits");
        c.insert_lbn(Lbn(2), seg(2, 4096), 4096, false).expect("fits");
        c.insert_lbn(Lbn(3), seg(3, 4096), 4096, false).expect("evicts");
        assert!(c.contains(CacheKey::Fho(fho(1, 0))), "dirty FHO pinned");
        assert!(!c.contains(Lbn(2).into()));
        // A set full of dirty FHO chunks is CacheFull, as for one shard.
        let full = shards(8192, 8);
        full.insert_fho(fho(1, 0), seg(1, 4096), 4096).expect("fits");
        full.insert_fho(fho(1, 4096), seg(2, 4096), 4096).expect("fits");
        assert!(matches!(
            full.insert_lbn(Lbn(9), seg(3, 4096), 4096, false),
            Err(CacheFull)
        ));
    }

    #[test]
    fn resolve_prefers_fho_across_shards() {
        let c = shards(1 << 20, 8);
        c.insert_lbn(Lbn(5), seg(0xAA, 4096), 4096, false).expect("fits");
        c.insert_fho(fho(7, 0), seg(0xBB, 4096), 4096).expect("fits");
        let stamp = KeyStamp::new().with_fho(fho(7, 0)).with_lbn(Lbn(5));
        let (key, segs) = c.resolve(&stamp).expect("resident");
        assert_eq!(key, CacheKey::Fho(fho(7, 0)));
        assert_eq!(segs[0].as_slice()[0], 0xBB);
        c.set_resolve_lbn_first(true);
        let (key, _) = c.resolve(&stamp).expect("resident");
        assert_eq!(key, CacheKey::Lbn(Lbn(5)), "ablation flips the order");
    }

    #[test]
    fn clean_keys_are_globally_lru_ordered() {
        let c = shards(1 << 20, 8);
        for b in 0..12u64 {
            c.insert_lbn(Lbn(b), seg(b as u8, 4096), 4096, false).expect("fits");
        }
        // Promote a few out of insertion order.
        c.lookup(Lbn(3).into());
        c.lookup(Lbn(0).into());
        let keys = c.clean_keys();
        assert_eq!(keys.len(), 12);
        assert_eq!(keys[10], CacheKey::Lbn(Lbn(3)));
        assert_eq!(keys[11], CacheKey::Lbn(Lbn(0)));
        // And it matches the single cache run step for step.
        let oracle = shards(1 << 20, 1);
        for b in 0..12u64 {
            oracle.insert_lbn(Lbn(b), seg(b as u8, 4096), 4096, false).expect("fits");
        }
        oracle.lookup(Lbn(3).into());
        oracle.lookup(Lbn(0).into());
        assert_eq!(keys, oracle.clean_keys());
    }

    #[test]
    fn epoch_windows_make_victim_sets_interleaving_invariant() {
        // Two lanes each touch their own block inside (epoch, tie)
        // windows. Whatever order the touches actually execute in, the
        // final LRU order is the (epoch, tie) order — so the eviction
        // victim is the same.
        use crate::epoch::{enter_window, stamp_base};
        let run = |flip: bool| {
            let c = shards(3 * 4096, 4);
            for b in 0..3u64 {
                c.insert_lbn(Lbn(b), seg(b as u8, 4096), 4096, false).expect("fits");
            }
            // Lane 0 (tie 0) touches block 0; lane 1 (tie 1) touches
            // block 1 — executed in either order.
            let touches: [(u64, u64); 2] = if flip { [(1, 1), (0, 0)] } else { [(0, 0), (1, 1)] };
            for (tie, block) in touches {
                let _g = enter_window(stamp_base(0, tie));
                c.lookup(Lbn(block).into());
            }
            c.advance_clock_past(stamp_base(1, 0));
            c.insert_lbn(Lbn(9), seg(9, 4096), 4096, false).expect("evicts");
            let mut resident: Vec<bool> = (0..3).map(|b| c.contains(Lbn(b).into())).collect();
            resident.push(c.contains(Lbn(9).into()));
            resident
        };
        let a = run(false);
        let b = run(true);
        assert_eq!(a, b, "victim set must not depend on execution order");
        assert_eq!(a, vec![true, true, false, true], "block 2 (untouched) evicted");
    }
}
