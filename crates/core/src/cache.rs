//! The two-part network-centric cache: LBN cache + FHO cache on one LRU.
//!
//! §3.4 of the paper, mechanised:
//!
//! * two key spaces, one chunk store: iSCSI read responses are indexed by
//!   logical block number, NFS write payloads by ⟨file handle, offset⟩;
//! * one global LRU chain of chunks; reclaiming prefers the LRU end, frees
//!   clean chunks silently, and writes dirty LBN chunks back to the storage
//!   server first;
//! * dirty FHO chunks are *not* evictable — they have no storage address
//!   until the file system flush remaps them (the paper sizes the FS cache
//!   small precisely so remapping always happens before the LBN copy would
//!   be flushed); the LRU skips them;
//! * `remap` moves an FHO entry into the LBN space, overwriting any stale
//!   LBN entry ("data in the FHO cache is always more up-to-date");
//! * `resolve` consults FHO before LBN so clients always see fresh data.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use netbuf::key::{CacheKey, Fho, Lbn};
use netbuf::{BufPool, Segment};

use crate::adaptive::{GhostLru, GhostStats};
use crate::chunk::Chunk;

/// Encodes a cache key into the ghost tail's u64 key space: LBN keys map
/// losslessly (block ≪ 1), FHO keys hash through the workspace mixer with
/// the low bit set so the two spaces never collide. Deterministic across
/// runs, platforms, and shard counts.
fn ghost_key(key: CacheKey) -> u64 {
    match key {
        CacheKey::Lbn(Lbn(block)) => block << 1,
        CacheKey::Fho(Fho { fh, offset }) => {
            (crate::shards::mix64(crate::shards::mix64(fh.0) ^ offset) << 1) | 1
        }
    }
}

/// Monotone recency-sequence source. Every shard of one logical cache
/// shares a single source so the LRU order is *global* across shards —
/// the property that makes [`crate::shards::NetCacheShards`] byte-identical
/// to a single-shard [`NetCache`] (same victims, same stats, same
/// writeback order).
///
/// Sequentially this is the old `Cell<u64>` counter verbatim: `next()`
/// returns the current value and bumps it by one. When the calling thread
/// is inside an epoch window (the lane-parallel engine,
/// [`crate::epoch`]), stamps come from the window instead, so recency
/// order is a pure function of lane program order rather than thread
/// interleaving.
#[derive(Clone, Debug, Default)]
pub(crate) struct SeqSource(Arc<AtomicU64>);

impl SeqSource {
    fn next(&self) -> u64 {
        if let Some(stamp) = crate::epoch::window_stamp() {
            return stamp;
        }
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Advances the counter past `stamp` (no-op if already beyond). The
    /// parallel engine calls this after a run so sequential accesses that
    /// follow still stamp as most recent despite the high epoch stamps.
    pub(crate) fn advance_past(&self, stamp: u64) {
        self.0.fetch_max(stamp + 1, Ordering::Relaxed);
    }
}

/// Error returned when a chunk cannot be admitted: every resident chunk is
/// a dirty, unremapped FHO entry, so nothing can be reclaimed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheFull;

impl fmt::Display for CacheFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "network-centric cache full of unremapped dirty chunks")
    }
}

impl std::error::Error for CacheFull {}

/// A dirty chunk evicted from the LBN cache; the caller must write it back
/// to the storage server.
#[derive(Debug)]
pub struct WritebackChunk {
    /// The block's storage address.
    pub lbn: Lbn,
    /// The payload, shared (logical copy) for attaching to an iSCSI write.
    pub segs: Vec<Segment>,
    /// Payload length.
    pub len: usize,
}

/// Operation counters; the testbed charges NCache management CPU time per
/// counted operation, which is exactly the overhead separating NFS-NCache
/// from NFS-baseline in Figures 4-7.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetCacheStats {
    /// Key lookups (hits + misses).
    pub lookups: u64,
    /// Lookup hits.
    pub hits: u64,
    /// Chunk insertions.
    pub insertions: u64,
    /// FHO→LBN remappings.
    pub remaps: u64,
    /// Clean chunks reclaimed.
    pub evicted_clean: u64,
    /// Dirty chunks written back and reclaimed.
    pub evicted_dirty: u64,
}

impl obs::StatsSnapshot for NetCacheStats {
    fn source(&self) -> &'static str {
        "ncache"
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("lookups", self.lookups),
            ("hits", self.hits),
            ("insertions", self.insertions),
            ("remaps", self.remaps),
            ("evicted_clean", self.evicted_clean),
            ("evicted_dirty", self.evicted_dirty),
        ]
    }
}

impl NetCacheStats {
    /// Total management operations (for CPU charging).
    pub fn total_ops(&self) -> u64 {
        self.lookups + self.insertions + self.remaps
    }

    /// Hit ratio in `[0, 1]`: hits over *lookups only*. Insertions and
    /// remaps are management traffic, not cache accesses — including them
    /// in the denominator would make per-shard ratios impossible to merge
    /// (each shard sees a different ops mix). With the lookup-only
    /// denominator, [`NetCacheStats::merge`]d shard counters reproduce the
    /// single-cache ratio exactly.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Accumulates `other` into `self` field-wise. Merging every shard's
    /// counters yields the whole-cache stats: all six fields are pure
    /// event counts, so addition is exact.
    pub fn merge(&mut self, other: &NetCacheStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.insertions += other.insertions;
        self.remaps += other.remaps;
        self.evicted_clean += other.evicted_clean;
        self.evicted_dirty += other.evicted_dirty;
    }
}

pub(crate) struct Entry {
    pub(crate) chunk: Chunk,
    /// The entry's true recency stamp. An atomic so the read fast path
    /// can promote through a shared reference: promotion is
    /// `fetch_max(fresh)`, which commutes — the final value is the max
    /// over all access stamps regardless of thread interleaving.
    pub(crate) seq: AtomicU64,
    /// The stamp this entry is indexed under in the LRU `order` map.
    /// Promotions do NOT move the index entry (that would need `&mut`);
    /// instead the order map is *lazy*: `order_seq <= seq` always, and
    /// every consumer of LRU order re-sorts or normalizes against the
    /// true `seq` before acting, so laziness is unobservable.
    order_seq: u64,
}

/// Interior-mutable operation counters, so hit lookups can count through
/// a shared reference. Plain relaxed adds: each field is an independent
/// event count, and [`NetCache::stats`] snapshots are only compared at
/// quiescent points (all six loads then read a settled value).
#[derive(Default)]
struct StatsCells {
    lookups: AtomicU64,
    hits: AtomicU64,
    insertions: AtomicU64,
    remaps: AtomicU64,
    evicted_clean: AtomicU64,
    evicted_dirty: AtomicU64,
}

impl StatsCells {
    fn snapshot(&self) -> NetCacheStats {
        NetCacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            remaps: self.remaps.load(Ordering::Relaxed),
            evicted_clean: self.evicted_clean.load(Ordering::Relaxed),
            evicted_dirty: self.evicted_dirty.load(Ordering::Relaxed),
        }
    }
}

/// The network-centric cache.
///
/// # Examples
///
/// ```
/// use ncache::cache::NetCache;
/// use netbuf::key::Lbn;
/// use netbuf::{BufPool, Segment};
///
/// let mut cache = NetCache::new(BufPool::new(1 << 20), 256);
/// cache.insert_lbn(Lbn(9), vec![Segment::from_vec(vec![1; 4096])], 4096, false)?;
/// assert!(cache.lookup(Lbn(9).into()).is_some());
/// # Ok::<(), ncache::CacheFull>(())
/// ```
pub struct NetCache {
    map: HashMap<CacheKey, Entry>,
    order: BTreeMap<u64, CacheKey>,
    seq: SeqSource,
    pool: BufPool,
    per_chunk_overhead: u64,
    fho_first: bool,
    stats: StatsCells,
    /// Shadow tail of recently evicted keys; `None` until the adaptive
    /// split is enabled. Shards of one logical cache share a single tail
    /// (the `Arc`), so ghost membership is a function of the *global*
    /// eviction sequence — shard-count-invariant even under displacement.
    /// Pure observer: recording and probing never draw stamps, never bump
    /// tallies, never influence victim selection.
    ghost: Option<Arc<Mutex<GhostLru>>>,
}

impl NetCache {
    /// A cache pinning memory from `pool`; each chunk additionally pins
    /// `per_chunk_overhead` bytes of descriptor memory (the metadata cost
    /// visible in Figure 6(a)'s working-set sweep).
    pub fn new(pool: BufPool, per_chunk_overhead: u64) -> Self {
        Self::with_seq_source(pool, per_chunk_overhead, SeqSource::default())
    }

    /// A shard of a larger logical cache: `pool` is the *shared* pinned
    /// pool and `seq` the *shared* recency source, so capacity pressure
    /// and LRU age are global properties of the shard set.
    pub(crate) fn with_seq_source(pool: BufPool, per_chunk_overhead: u64, seq: SeqSource) -> Self {
        NetCache {
            map: HashMap::new(),
            order: BTreeMap::new(),
            seq,
            pool,
            per_chunk_overhead,
            fho_first: true,
            stats: StatsCells::default(),
            ghost: None,
        }
    }

    /// Attaches a ghost tail holding up to `cap` evicted keys. For a
    /// sharded cache use [`crate::shards::NetCacheShards::enable_ghost`],
    /// which shares one tail across shards.
    pub fn enable_ghost(&mut self, cap: usize) {
        self.set_ghost(Arc::new(Mutex::new(GhostLru::new(cap))));
    }

    /// Installs a (possibly shared) ghost tail.
    pub(crate) fn set_ghost(&mut self, ghost: Arc<Mutex<GhostLru>>) {
        self.ghost = Some(ghost);
    }

    /// Ghost-tail counters, or `None` when no tail is attached.
    pub fn ghost_stats(&self) -> Option<GhostStats> {
        self.ghost
            .as_ref()
            .map(|g| g.lock().expect("ghost poisoned").stats())
    }

    /// Ablation knob: resolve LBN before FHO. The paper's order (FHO
    /// first) is required for freshness; flipping it demonstrates the
    /// staleness bug the ordering prevents (§3.4).
    pub fn set_resolve_lbn_first(&mut self, lbn_first: bool) {
        self.fho_first = !lbn_first;
    }

    /// Chunks currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently pinned (payload + per-chunk overhead).
    pub fn pinned_bytes(&self) -> u64 {
        self.pool.pinned()
    }

    /// The pinned-memory pool backing this cache.
    pub fn pool(&self) -> &BufPool {
        &self.pool
    }

    /// Counter snapshot.
    pub fn stats(&self) -> NetCacheStats {
        self.stats.snapshot()
    }

    /// Whether `key` is resident (no LRU promotion, no counter change).
    pub fn contains(&self, key: CacheKey) -> bool {
        self.map.contains_key(&key)
    }

    /// Whether `key` is resident and dirty.
    pub fn is_dirty(&self, key: CacheKey) -> bool {
        self.map.get(&key).is_some_and(|e| e.chunk.is_dirty())
    }

    /// Inserts a chunk arriving from the storage server (iSCSI Data-In).
    ///
    /// # Errors
    ///
    /// [`CacheFull`] when space cannot be reclaimed. On success, any dirty
    /// chunks displaced by the LRU are returned for writeback.
    pub fn insert_lbn(
        &mut self,
        lbn: Lbn,
        segs: Vec<Segment>,
        len: usize,
        dirty: bool,
    ) -> Result<Vec<WritebackChunk>, CacheFull> {
        self.insert(CacheKey::Lbn(lbn), segs, len, dirty)
    }

    /// Inserts a chunk arriving in an NFS write request. Always dirty.
    ///
    /// # Errors
    ///
    /// [`CacheFull`] as for [`NetCache::insert_lbn`].
    pub fn insert_fho(
        &mut self,
        fho: Fho,
        segs: Vec<Segment>,
        len: usize,
    ) -> Result<Vec<WritebackChunk>, CacheFull> {
        self.insert(CacheKey::Fho(fho), segs, len, true)
    }

    fn insert(
        &mut self,
        key: CacheKey,
        segs: Vec<Segment>,
        len: usize,
        dirty: bool,
    ) -> Result<Vec<WritebackChunk>, CacheFull> {
        self.stats.insertions.fetch_add(1, Ordering::Relaxed);
        crate::epoch::bump_tally();
        // Replace any existing entry under this key first (its pin frees).
        self.remove_entry(key);
        let need = len as u64 + self.per_chunk_overhead;
        let mut writebacks = Vec::new();
        let pin = loop {
            match self.pool.pin(need) {
                Ok(p) => break p,
                Err(_) => {
                    if let Some(wb) = self.reclaim_one()? {
                        writebacks.push(wb);
                    }
                }
            }
        };
        let chunk = Chunk::new(segs, len, dirty, pin);
        self.insert_chunk_fresh(key, chunk);
        Ok(writebacks)
    }

    /// Looks `key` up, promoting it to most-recently-used and returning
    /// its payload segments (a logical copy).
    ///
    /// Promotion is *via max*: the entry keeps the larger of its current
    /// stamp and the fresh one. Sequentially the fresh stamp is always
    /// larger (the counter is monotone), so this is the classic LRU
    /// promotion byte for byte; under epoch windows it makes a chunk's
    /// final LRU position the maximum over its access stamps — a function
    /// of the access multiset, not of thread interleaving.
    ///
    /// This is the read fast path: it takes `&self` (shared), mutates no
    /// map, and leaves the lazy `order` index untouched. The promotion
    /// (`fetch_max`) and the counters are atomics; everything else is a
    /// read. The shard set exploits this by serving lookups under a read
    /// lock, so concurrent hit lookups never serialize against each
    /// other.
    pub fn lookup(&self, key: CacheKey) -> Option<Vec<Segment>> {
        self.stats.lookups.fetch_add(1, Ordering::Relaxed);
        crate::epoch::bump_tally();
        if let Some(entry) = self.map.get(&key) {
            let fresh = self.seq.next();
            entry.seq.fetch_max(fresh, Ordering::Relaxed);
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            Some(entry.chunk.share_segments())
        } else {
            // A miss consults the ghost tail: a hit there is a request a
            // larger NCache quota would have served. Observation only —
            // no stamp, no tally, no admission.
            if let Some(g) = &self.ghost {
                g.lock().expect("ghost poisoned").probe(ghost_key(key));
            }
            None
        }
    }

    /// Resolves a key stamp the way §3.4 requires: the FHO cache first
    /// (fresh client writes win), then the LBN cache. (The ablation knob
    /// [`NetCache::set_resolve_lbn_first`] flips the order to exhibit the
    /// staleness bug the paper's ordering prevents.)
    pub fn resolve(&self, stamp: &netbuf::key::KeyStamp) -> Option<(CacheKey, Vec<Segment>)> {
        let fho_key = stamp.fho.map(CacheKey::Fho);
        let lbn_key = stamp.lbn.map(CacheKey::Lbn);
        let (first, second) = if self.fho_first {
            (fho_key, lbn_key)
        } else {
            (lbn_key, fho_key)
        };
        for key in [first, second].into_iter().flatten() {
            if let Some(segs) = self.lookup(key) {
                return Some((key, segs));
            }
        }
        None
    }

    /// Remaps an FHO entry to an LBN key when the file system flushes the
    /// corresponding dirty buffer, overwriting any stale LBN entry.
    /// Returns the (still dirty) payload for the outgoing iSCSI write, or
    /// `None` if the FHO entry is absent.
    pub fn remap(&mut self, fho: Fho, lbn: Lbn) -> Option<Vec<Segment>> {
        self.stats.remaps.fetch_add(1, Ordering::Relaxed);
        crate::epoch::bump_tally();
        let entry = self.remove_entry(CacheKey::Fho(fho))?;
        // Overwrite any stale LBN copy — "data in the FHO cache is always
        // more up-to-date" (§3.4).
        self.remove_entry(CacheKey::Lbn(lbn));
        let segs = entry.chunk.share_segments();
        self.insert_chunk_fresh(CacheKey::Lbn(lbn), entry.chunk);
        Some(segs)
    }

    /// Marks a chunk clean after its data reached the storage server.
    pub fn mark_clean(&mut self, key: CacheKey) {
        if let Some(e) = self.map.get_mut(&key) {
            e.chunk.mark_clean();
        }
    }

    /// Records an inheritable checksum on a resident chunk.
    pub fn set_csum(&mut self, key: CacheKey, csum: u16) {
        if let Some(e) = self.map.get_mut(&key) {
            e.chunk.set_csum(csum);
        }
    }

    /// The stored checksum of a resident chunk.
    pub fn stored_csum(&self, key: CacheKey) -> Option<u16> {
        self.map.get(&key).and_then(|e| e.chunk.stored_csum())
    }

    /// Removes a chunk outright (no writeback), returning whether it was
    /// resident.
    pub fn invalidate(&mut self, key: CacheKey) -> bool {
        self.remove_entry(key).is_some()
    }

    /// Materialized contents of a resident chunk (integrity checks).
    pub fn chunk_bytes(&self, key: CacheKey) -> Option<Vec<u8>> {
        self.map.get(&key).map(|e| e.chunk.to_bytes())
    }

    /// Keys of clean resident chunks in LRU order. The sequence is
    /// deterministic (it sorts by true recency stamp, not hash-map
    /// order), which fault injection relies on to pick corruption
    /// targets reproducibly.
    pub fn clean_keys(&self) -> Vec<CacheKey> {
        let mut tagged = self.clean_keys_with_seq();
        tagged.sort_unstable_by_key(|&(seq, _)| seq);
        tagged.into_iter().map(|(_, k)| k).collect()
    }

    pub(crate) fn remove_entry(&mut self, key: CacheKey) -> Option<Entry> {
        let entry = self.map.remove(&key)?;
        self.order.remove(&entry.order_seq);
        Some(entry)
    }

    /// Inserts an already-built chunk at a fresh (most-recently-used)
    /// sequence number. The chunk's pool pin travels with it.
    pub(crate) fn insert_chunk_fresh(&mut self, key: CacheKey, chunk: Chunk) {
        let seq = self.seq.next();
        self.map.insert(
            key,
            Entry {
                chunk,
                seq: AtomicU64::new(seq),
                order_seq: seq,
            },
        );
        self.order.insert(seq, key);
    }

    /// Counts an insertion attempt (the shard set charges the target
    /// shard before running the global reclaim loop, exactly as
    /// [`NetCache::insert`] charges itself).
    pub(crate) fn note_insertion(&mut self) {
        self.stats.insertions.fetch_add(1, Ordering::Relaxed);
        crate::epoch::bump_tally();
    }

    /// Counts a remap (the shard set charges the shard the FHO entry
    /// lives in when the move crosses shards).
    pub(crate) fn note_remap(&mut self) {
        self.stats.remaps.fetch_add(1, Ordering::Relaxed);
        crate::epoch::bump_tally();
    }

    /// Finds the least-recently-used *reclaimable* chunk (clean, or dirty
    /// LBN), normalizing the lazy order index on the way: any entry whose
    /// index stamp trails its true stamp (a fast-path promotion happened
    /// since it was indexed) is re-filed under the true stamp before
    /// victim selection. Because recency stamps are unique and only ever
    /// grow, the first *settled* entry (index stamp == true stamp) is the
    /// global minimum — every other entry's true stamp exceeds its own
    /// index stamp, which exceeds the settled minimum. The victim is
    /// therefore exactly the chunk the eager (pre-decomposition) order
    /// map would have picked.
    fn lru_victim_normalized(&mut self, clean_only: bool) -> Option<(u64, CacheKey)> {
        let mut cursor = 0u64;
        loop {
            let (oseq, key) = {
                let (&oseq, &key) = self.order.range(cursor..).next()?;
                (oseq, key)
            };
            let entry = self.map.get_mut(&key).expect("order index is consistent");
            let true_seq = entry.seq.load(Ordering::Relaxed);
            if true_seq != oseq {
                // Stale index entry: re-file at the true stamp (which is
                // unique, so the slot is free) and rescan from the same
                // cursor — the re-filed entry moved later, never earlier.
                entry.order_seq = true_seq;
                self.order.remove(&oseq);
                self.order.insert(true_seq, key);
                continue;
            }
            let reclaimable = if clean_only {
                !self.is_dirty(key)
            } else {
                match key {
                    CacheKey::Fho(_) => !self.is_dirty(key),
                    CacheKey::Lbn(_) => true,
                }
            };
            if reclaimable {
                return Some((oseq, key));
            }
            // Pinned (dirty FHO — or any dirty chunk when only clean
            // victims qualify): skip past it.
            cursor = oseq + 1;
        }
    }

    /// The sequence number of this cache's least-recently-used
    /// *reclaimable* chunk (clean, or dirty LBN), or `None` when every
    /// resident chunk is a pinned dirty FHO entry. The shard set uses this
    /// to pick the globally oldest victim across shards. Takes `&mut`
    /// because it normalizes the lazy order index (see
    /// [`NetCache::lru_victim_normalized`]).
    pub(crate) fn reclaimable_head_seq(&mut self) -> Option<u64> {
        self.lru_victim_normalized(false).map(|(seq, _)| seq)
    }

    /// The sequence number of this cache's least-recently-used *clean*
    /// chunk, or `None` when every resident chunk is dirty. The shard set
    /// uses this during tick-time quota shrinks, which must not trigger
    /// writebacks (writeback timing belongs to request chains, not to the
    /// controller).
    pub(crate) fn clean_head_seq(&mut self) -> Option<u64> {
        self.lru_victim_normalized(true).map(|(seq, _)| seq)
    }

    /// Bytes a chunk of `len` payload bytes pins (payload + descriptor).
    pub(crate) fn chunk_footprint(&self, len: usize) -> u64 {
        len as u64 + self.per_chunk_overhead
    }

    /// Clean resident keys tagged with their *true* LRU sequence, for the
    /// shard set to merge into one globally LRU-ordered list. Reads the
    /// true stamps directly (no index normalization needed), so it stays
    /// `&self`; callers sort by stamp.
    pub(crate) fn clean_keys_with_seq(&self) -> Vec<(u64, CacheKey)> {
        self.map
            .iter()
            .filter(|&(&k, _)| !self.is_dirty(k))
            .map(|(&k, e)| (e.seq.load(Ordering::Relaxed), k))
            .collect()
    }

    /// Reclaims the least-recently-used reclaimable chunk. Clean chunks
    /// free silently (`Ok(None)`); dirty LBN chunks are removed and
    /// returned for writeback; dirty FHO chunks are skipped (they must be
    /// remapped first).
    ///
    /// # Errors
    ///
    /// [`CacheFull`] when every resident chunk is an unremapped dirty FHO
    /// entry.
    pub(crate) fn reclaim_one(&mut self) -> Result<Option<WritebackChunk>, CacheFull> {
        let Some((seq, key)) = self.lru_victim_normalized(false) else {
            return Err(CacheFull);
        };
        if let Some(g) = &self.ghost {
            g.lock().expect("ghost poisoned").record(ghost_key(key), seq);
        }
        let entry = self.remove_entry(key).expect("victim is resident");
        if entry.chunk.is_dirty() {
            self.stats.evicted_dirty.fetch_add(1, Ordering::Relaxed);
            let lbn = match key {
                CacheKey::Lbn(l) => l,
                CacheKey::Fho(_) => unreachable!("dirty FHO chunks are never victims"),
            };
            Ok(Some(WritebackChunk {
                lbn,
                segs: entry.chunk.share_segments(),
                len: entry.chunk.len(),
            }))
        } else {
            self.stats.evicted_clean.fetch_add(1, Ordering::Relaxed);
            Ok(None)
        }
    }

    /// Reclaims the least-recently-used *clean* chunk (LBN or FHO),
    /// recording it in the ghost tail like any other eviction. Returns
    /// `false` when every resident chunk is dirty — the tick-time shrink
    /// then leaves the overshoot for the demand path to drain. Never
    /// produces a writeback.
    pub(crate) fn reclaim_one_clean(&mut self) -> bool {
        let Some((seq, key)) = self.lru_victim_normalized(true) else {
            return false;
        };
        if let Some(g) = &self.ghost {
            g.lock().expect("ghost poisoned").record(ghost_key(key), seq);
        }
        let entry = self.remove_entry(key).expect("victim is resident");
        debug_assert!(!entry.chunk.is_dirty(), "clean victim selection");
        self.stats.evicted_clean.fetch_add(1, Ordering::Relaxed);
        true
    }
}

impl fmt::Debug for NetCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetCache")
            .field("chunks", &self.map.len())
            .field("pinned_bytes", &self.pool.pinned())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbuf::key::{FileHandle, KeyStamp};

    fn seg(tag: u8, len: usize) -> Vec<Segment> {
        vec![Segment::from_vec(vec![tag; len])]
    }

    fn cache(capacity: u64) -> NetCache {
        NetCache::new(BufPool::new(capacity), 0)
    }

    fn fho(fh: u64, off: u64) -> Fho {
        Fho::new(FileHandle(fh), off)
    }

    #[test]
    fn insert_and_lookup_lbn() {
        let mut c = cache(1 << 20);
        c.insert_lbn(Lbn(1), seg(1, 4096), 4096, false).expect("fits");
        let got = c.lookup(Lbn(1).into()).expect("resident");
        assert_eq!(got[0].as_slice(), &vec![1u8; 4096][..]);
        assert!(c.lookup(Lbn(2).into()).is_none());
        let s = c.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.insertions, 1);
    }

    #[test]
    fn lru_evicts_clean_silently() {
        let mut c = cache(8192);
        c.insert_lbn(Lbn(1), seg(1, 4096), 4096, false).expect("fits");
        c.insert_lbn(Lbn(2), seg(2, 4096), 4096, false).expect("fits");
        let wb = c.insert_lbn(Lbn(3), seg(3, 4096), 4096, false).expect("evicts");
        assert!(wb.is_empty(), "clean eviction needs no writeback");
        assert!(!c.contains(Lbn(1).into()), "LRU chunk reclaimed");
        assert!(c.contains(Lbn(2).into()));
        assert!(c.contains(Lbn(3).into()));
        assert_eq!(c.stats().evicted_clean, 1);
    }

    #[test]
    fn lookup_promotes() {
        let mut c = cache(8192);
        c.insert_lbn(Lbn(1), seg(1, 4096), 4096, false).expect("fits");
        c.insert_lbn(Lbn(2), seg(2, 4096), 4096, false).expect("fits");
        c.lookup(Lbn(1).into());
        c.insert_lbn(Lbn(3), seg(3, 4096), 4096, false).expect("evicts");
        assert!(c.contains(Lbn(1).into()), "promoted chunk survives");
        assert!(!c.contains(Lbn(2).into()));
    }

    #[test]
    fn dirty_lbn_eviction_returns_writeback() {
        let mut c = cache(8192);
        c.insert_lbn(Lbn(1), seg(1, 4096), 4096, true).expect("fits");
        c.insert_lbn(Lbn(2), seg(2, 4096), 4096, false).expect("fits");
        let wb = c.insert_lbn(Lbn(3), seg(3, 4096), 4096, false).expect("evicts");
        assert_eq!(wb.len(), 1);
        assert_eq!(wb[0].lbn, Lbn(1));
        assert_eq!(wb[0].len, 4096);
        assert_eq!(wb[0].segs[0].as_slice(), &vec![1u8; 4096][..]);
        assert_eq!(c.stats().evicted_dirty, 1);
    }

    #[test]
    fn dirty_fho_chunks_are_never_victims() {
        let mut c = cache(8192);
        c.insert_fho(fho(1, 0), seg(1, 4096), 4096).expect("fits");
        c.insert_lbn(Lbn(2), seg(2, 4096), 4096, false).expect("fits");
        // Inserting a third must evict the *clean LBN* chunk even though
        // the FHO chunk is older.
        c.insert_lbn(Lbn(3), seg(3, 4096), 4096, false).expect("evicts");
        assert!(c.contains(CacheKey::Fho(fho(1, 0))));
        assert!(!c.contains(Lbn(2).into()));
    }

    #[test]
    fn cache_full_of_dirty_fho_errors() {
        let mut c = cache(8192);
        c.insert_fho(fho(1, 0), seg(1, 4096), 4096).expect("fits");
        c.insert_fho(fho(1, 4096), seg(2, 4096), 4096).expect("fits");
        assert!(matches!(
            c.insert_lbn(Lbn(9), seg(3, 4096), 4096, false),
            Err(CacheFull)
        ));
        assert!(CacheFull.to_string().contains("unremapped"));
    }

    #[test]
    fn remap_moves_fho_to_lbn_and_overwrites() {
        let mut c = cache(1 << 20);
        // Stale LBN copy and a fresher FHO copy of the same block.
        c.insert_lbn(Lbn(5), seg(0xAA, 4096), 4096, false).expect("fits");
        c.insert_fho(fho(7, 0), seg(0xBB, 4096), 4096).expect("fits");
        let segs = c.remap(fho(7, 0), Lbn(5)).expect("remapped");
        assert_eq!(segs[0].as_slice(), &vec![0xBB; 4096][..]);
        assert!(!c.contains(CacheKey::Fho(fho(7, 0))));
        // The LBN entry now holds the fresh data and stays dirty until
        // writeback completes.
        assert_eq!(c.chunk_bytes(Lbn(5).into()), Some(vec![0xBB; 4096]));
        assert!(c.is_dirty(Lbn(5).into()));
        c.mark_clean(Lbn(5).into());
        assert!(!c.is_dirty(Lbn(5).into()));
        assert_eq!(c.stats().remaps, 1);
    }

    #[test]
    fn remap_missing_fho_is_none() {
        let mut c = cache(1 << 20);
        assert!(c.remap(fho(1, 0), Lbn(1)).is_none());
    }

    #[test]
    fn resolve_prefers_fho_over_lbn() {
        let mut c = cache(1 << 20);
        c.insert_lbn(Lbn(5), seg(0xAA, 4096), 4096, false).expect("fits");
        c.insert_fho(fho(7, 0), seg(0xBB, 4096), 4096).expect("fits");
        let stamp = KeyStamp::new().with_fho(fho(7, 0)).with_lbn(Lbn(5));
        let (key, segs) = c.resolve(&stamp).expect("resident");
        assert_eq!(key, CacheKey::Fho(fho(7, 0)));
        assert_eq!(segs[0].as_slice()[0], 0xBB, "client sees the fresh write");
    }

    #[test]
    fn resolve_falls_back_to_lbn() {
        let mut c = cache(1 << 20);
        c.insert_lbn(Lbn(5), seg(0xAA, 4096), 4096, false).expect("fits");
        let stamp = KeyStamp::new().with_fho(fho(9, 0)).with_lbn(Lbn(5));
        let (key, _) = c.resolve(&stamp).expect("resident");
        assert_eq!(key, CacheKey::Lbn(Lbn(5)));
        assert!(c.resolve(&KeyStamp::new()).is_none());
    }

    #[test]
    fn reinsert_replaces_and_releases_pin() {
        let mut c = cache(1 << 20);
        c.insert_lbn(Lbn(1), seg(1, 4096), 4096, false).expect("fits");
        let pinned = c.pinned_bytes();
        c.insert_lbn(Lbn(1), seg(9, 4096), 4096, false).expect("fits");
        assert_eq!(c.pinned_bytes(), pinned, "old pin released");
        assert_eq!(c.len(), 1);
        assert_eq!(c.chunk_bytes(Lbn(1).into()), Some(vec![9u8; 4096]));
    }

    #[test]
    fn per_chunk_overhead_shrinks_effective_capacity() {
        // With 256 B of metadata per chunk, a 12 KiB pool holds only two
        // 4 KiB chunks instead of three — Figure 6(a)'s effect.
        let mut with_overhead = NetCache::new(BufPool::new(3 * 4096 + 256), 256);
        for i in 0..3u64 {
            with_overhead
                .insert_lbn(Lbn(i), seg(i as u8, 4096), 4096, false)
                .expect("insert");
        }
        assert_eq!(with_overhead.len(), 2);
        let mut without = NetCache::new(BufPool::new(3 * 4096 + 256), 0);
        for i in 0..3u64 {
            without
                .insert_lbn(Lbn(i), seg(i as u8, 4096), 4096, false)
                .expect("insert");
        }
        assert_eq!(without.len(), 3);
    }

    #[test]
    fn invalidate_and_csum() {
        let mut c = cache(1 << 20);
        c.insert_lbn(Lbn(1), seg(1, 64), 64, false).expect("fits");
        c.set_csum(Lbn(1).into(), 0x1234);
        assert_eq!(c.stored_csum(Lbn(1).into()), Some(0x1234));
        assert!(c.invalidate(Lbn(1).into()));
        assert!(!c.invalidate(Lbn(1).into()));
        assert_eq!(c.stored_csum(Lbn(1).into()), None);
        assert!(c.is_empty());
    }

    #[test]
    fn stats_total_ops_and_hit_ratio() {
        let mut c = cache(1 << 20);
        c.insert_lbn(Lbn(1), seg(1, 64), 64, false).expect("fits");
        c.lookup(Lbn(1).into());
        c.lookup(Lbn(2).into());
        let s = c.stats();
        assert_eq!(s.total_ops(), 3);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(NetCacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn hit_ratio_excludes_non_lookup_ops() {
        // Regression: the ratio must divide by lookups only. If insertions
        // or remaps leaked into the denominator, per-shard ratios could
        // not be merged (shards see different insert/lookup mixes).
        let mut s = NetCacheStats {
            lookups: 4,
            hits: 3,
            ..NetCacheStats::default()
        };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        // Pile on management traffic: the ratio must not move.
        s.insertions = 1000;
        s.remaps = 500;
        s.evicted_clean = 200;
        s.evicted_dirty = 100;
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);

        // Merging shard counters reproduces the whole-cache ratio even
        // when the per-shard mixes differ wildly.
        let shard_a = NetCacheStats {
            lookups: 10,
            hits: 9,
            insertions: 700,
            ..NetCacheStats::default()
        };
        let shard_b = NetCacheStats {
            lookups: 90,
            hits: 21,
            remaps: 3,
            ..NetCacheStats::default()
        };
        let mut merged = NetCacheStats::default();
        merged.merge(&shard_a);
        merged.merge(&shard_b);
        assert_eq!(merged.lookups, 100);
        assert_eq!(merged.hits, 30);
        assert_eq!(merged.insertions, 700);
        assert_eq!(merged.remaps, 3);
        assert!((merged.hit_ratio() - 0.30).abs() < 1e-12);
    }

    #[test]
    fn multi_segment_chunks_round_trip() {
        // A 4 KiB block arriving as three wire segments (1448+1448+1200).
        let mut c = cache(1 << 20);
        let segs = vec![
            Segment::from_vec(vec![1; 1448]),
            Segment::from_vec(vec![2; 1448]),
            Segment::from_vec(vec![3; 1200]),
        ];
        c.insert_lbn(Lbn(4), segs, 4096, false).expect("fits");
        let bytes = c.chunk_bytes(Lbn(4).into()).expect("resident");
        assert_eq!(bytes.len(), 4096);
        assert_eq!(bytes[0], 1);
        assert_eq!(bytes[1448], 2);
        assert_eq!(bytes[2896], 3);
    }
}
