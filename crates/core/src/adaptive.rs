//! Ghost (shadow) LRU tails and the adaptive cache-split controller.
//!
//! The paper fixes the FS-cache/NCache partition statically (its
//! double-buffering control); NetCAS-style adaptive management resizes it
//! online from the **marginal** value of extra capacity, which a plain
//! hit ratio cannot see. The instrument here is a *ghost LRU*: a bounded
//! tail of recently evicted keys, ordered by the victim's settled recency
//! stamp. A miss that lands in the ghost ("ghost hit") is a request that
//! a slightly larger cache would have served — so comparing per-epoch
//! ghost-hit rates across the two caches tells the controller which side
//! is starved.
//!
//! Determinism contract:
//!
//! * a ghost is a **pure observer** — probing or recording never draws a
//!   recency stamp, never bumps an ops tally, and never influences victim
//!   selection, so an installed-but-frozen controller
//!   ([`SplitConfig::static_split`]) is byte-for-byte unobservable;
//! * membership is a pure function of the eviction multiset `(key,
//!   stamp)`: stamps are the victims' settled sequence numbers, which the
//!   epoch-window machinery already makes schedule-invariant, so the tail
//!   (and every probe outcome between ticks) is identical at any thread
//!   or shard count;
//! * the controller itself is plain state fed at epoch-aligned ticks —
//!   it decides from **epoch-windowed** deltas (a cumulative ratio is
//!   blind to phase changes late in a run) and its quota arithmetic is
//!   integer-exact, with `fs + ncache == total` conserved at every step.

use std::collections::{BTreeMap, HashMap};

/// Quota granularity: one FS block / one NCache payload chunk (4 KiB).
/// Mirrors `blockdev::BLOCK_SIZE` without taking the dependency.
pub const QUOTA_BLOCK: u64 = 4096;

/// Counters of one ghost tail (or a shard-merge of several).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GhostStats {
    /// Misses that consulted the tail.
    pub probes: u64,
    /// Probes that found their key — would-have-hit requests.
    pub hits: u64,
    /// Evictions recorded into the tail.
    pub records: u64,
    /// Entries displaced because the tail was full.
    pub displaced: u64,
}

impl GhostStats {
    /// Folds another stats block in. Plain sums, so merging shard stats
    /// is order-invariant: any permutation of `absorb` calls yields the
    /// same totals.
    pub fn absorb(&mut self, other: &GhostStats) {
        self.probes += other.probes;
        self.hits += other.hits;
        self.records += other.records;
        self.displaced += other.displaced;
    }
}

/// A bounded shadow tail of recently evicted keys.
///
/// Entries are ordered by the victim's eviction stamp (its settled
/// recency sequence number, unique within a cache); over capacity the
/// smallest stamp — the least recently used victim — falls off. Probing
/// does not remove: membership is exactly "the last-K distinct evicted
/// keys", which the property suite checks against a brute-force model.
///
/// # Examples
///
/// ```
/// use ncache::adaptive::GhostLru;
/// let mut g = GhostLru::new(2);
/// g.record(10, 1);
/// g.record(11, 2);
/// g.record(12, 3); // displaces key 10 (stamp 1)
/// assert!(!g.probe(10) && g.probe(11) && g.probe(12));
/// assert_eq!(g.stats().hits, 2);
/// ```
#[derive(Clone, Debug)]
pub struct GhostLru {
    cap: usize,
    by_key: HashMap<u64, u64>,
    by_stamp: BTreeMap<u64, u64>,
    stats: GhostStats,
}

impl GhostLru {
    /// An empty tail holding at most `cap` keys.
    pub fn new(cap: usize) -> GhostLru {
        GhostLru {
            cap,
            by_key: HashMap::new(),
            by_stamp: BTreeMap::new(),
            stats: GhostStats::default(),
        }
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current entries.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// True when the tail holds nothing.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Membership without counting a probe (tests and diagnostics).
    pub fn contains(&self, key: u64) -> bool {
        self.by_key.contains_key(&key)
    }

    /// Records the eviction of `key` at recency `stamp`. Re-recording a
    /// key moves it to the new stamp; over capacity the oldest entry is
    /// displaced. Stamps must be unique per tail (they are settled cache
    /// sequence numbers).
    pub fn record(&mut self, key: u64, stamp: u64) {
        if self.cap == 0 {
            return;
        }
        self.stats.records += 1;
        if let Some(old) = self.by_key.insert(key, stamp) {
            self.by_stamp.remove(&old);
        }
        let clash = self.by_stamp.insert(stamp, key);
        debug_assert!(clash.is_none(), "duplicate ghost stamp {stamp}");
        while self.by_key.len() > self.cap {
            let (_, oldest) = self.by_stamp.pop_first().expect("non-empty over cap");
            self.by_key.remove(&oldest);
            self.stats.displaced += 1;
        }
    }

    /// Probes on a cache miss: true (and counted as a ghost hit) when
    /// the key sits in the tail. The entry stays — it is dropped only by
    /// displacement or [`GhostLru::forget`].
    pub fn probe(&mut self, key: u64) -> bool {
        self.stats.probes += 1;
        let hit = self.by_key.contains_key(&key);
        if hit {
            self.stats.hits += 1;
        }
        hit
    }

    /// Drops a key, if present (the block was invalidated, not evicted).
    pub fn forget(&mut self, key: u64) {
        if let Some(stamp) = self.by_key.remove(&key) {
            self.by_stamp.remove(&stamp);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> GhostStats {
        self.stats
    }

    /// Keys ordered oldest → newest eviction (test support).
    pub fn keys_by_recency(&self) -> Vec<u64> {
        self.by_stamp.values().copied().collect()
    }
}

/// Static parameters of the split controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitConfig {
    /// False freezes the controller: ghosts observe, quotas never move,
    /// nothing is emitted — byte-for-byte unobservable.
    pub dynamic: bool,
    /// Controller epoch length: ops per session-round between ticks.
    pub epoch_ops: u64,
    /// Quota moved per decision, in [`QUOTA_BLOCK`] units.
    pub step_blocks: u64,
    /// Minimum ghost-hit advantage (per epoch) before quota moves.
    pub hysteresis: u64,
    /// Epochs that must pass after a resize before the direction may
    /// reverse — with the per-epoch tick cadence this forbids two
    /// opposing resizes within `cooldown_epochs` epochs of each other.
    pub cooldown_epochs: u64,
    /// The FS cache never shrinks below this many blocks.
    pub min_fs_blocks: u64,
    /// The NCache pool never shrinks below this many bytes.
    pub min_ncache_bytes: u64,
    /// Ghost-tail capacity (entries) installed on each cache.
    pub ghost_blocks: usize,
}

impl SplitConfig {
    /// A frozen controller: ghosts attach, quotas stay put. Installing
    /// this must be unobservable versus a build without the feature.
    pub fn static_split() -> SplitConfig {
        SplitConfig {
            dynamic: false,
            ..SplitConfig::adaptive()
        }
    }

    /// The dynamic controller with default gains.
    pub fn adaptive() -> SplitConfig {
        SplitConfig {
            dynamic: true,
            epoch_ops: 32,
            step_blocks: 64,
            hysteresis: 4,
            cooldown_epochs: 1,
            min_fs_blocks: 16,
            min_ncache_bytes: 64 * QUOTA_BLOCK,
            ghost_blocks: 4096,
        }
    }
}

/// Cumulative control inputs sampled at a tick. The controller windows
/// them itself (see [`SplitController::tick`]); callers just hand over
/// the running totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SplitSample {
    /// FS-cache hits (cumulative).
    pub fs_hits: u64,
    /// FS-cache misses (cumulative).
    pub fs_misses: u64,
    /// FS ghost hits (cumulative).
    pub fs_ghost_hits: u64,
    /// NCache hits (cumulative).
    pub nc_hits: u64,
    /// NCache misses (cumulative).
    pub nc_misses: u64,
    /// NCache ghost hits (cumulative, shard-merged).
    pub nc_ghost_hits: u64,
}

impl SplitSample {
    fn delta_since(&self, prev: &SplitSample) -> SplitSignal {
        SplitSignal {
            fs_hits: self.fs_hits - prev.fs_hits,
            fs_misses: self.fs_misses - prev.fs_misses,
            fs_ghost_hits: self.fs_ghost_hits - prev.fs_ghost_hits,
            nc_hits: self.nc_hits - prev.nc_hits,
            nc_misses: self.nc_misses - prev.nc_misses,
            nc_ghost_hits: self.nc_ghost_hits - prev.nc_ghost_hits,
        }
    }
}

/// One epoch's windowed control signal: the deltas between consecutive
/// ticks, never cumulative totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SplitSignal {
    /// FS-cache hits this epoch.
    pub fs_hits: u64,
    /// FS-cache misses this epoch.
    pub fs_misses: u64,
    /// FS ghost hits this epoch.
    pub fs_ghost_hits: u64,
    /// NCache hits this epoch.
    pub nc_hits: u64,
    /// NCache misses this epoch.
    pub nc_misses: u64,
    /// NCache ghost hits this epoch.
    pub nc_ghost_hits: u64,
}

impl SplitSignal {
    /// FS hit ratio over this epoch only, in permille (integer-exact;
    /// 1000 when the epoch saw no FS accesses).
    pub fn fs_hit_permille(&self) -> u64 {
        ratio_permille(self.fs_hits, self.fs_misses)
    }

    /// NCache hit ratio over this epoch only, in permille.
    pub fn nc_hit_permille(&self) -> u64 {
        ratio_permille(self.nc_hits, self.nc_misses)
    }
}

fn ratio_permille(hits: u64, misses: u64) -> u64 {
    (hits * 1000).checked_div(hits + misses).unwrap_or(1000)
}

/// Which cache a resize grows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResizeDir {
    /// Quota moves from the NCache pool to the FS cache.
    ToFs,
    /// Quota moves from the FS cache to the NCache pool.
    ToNcache,
}

impl ResizeDir {
    fn opposite(self) -> ResizeDir {
        match self {
            ResizeDir::ToFs => ResizeDir::ToNcache,
            ResizeDir::ToNcache => ResizeDir::ToFs,
        }
    }
}

/// One applied quota move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Resize {
    /// Direction of the move.
    pub dir: ResizeDir,
    /// Blocks moved ([`QUOTA_BLOCK`] units).
    pub blocks: u64,
    /// FS quota after the move, blocks.
    pub fs_blocks: u64,
    /// NCache quota after the move, bytes.
    pub ncache_bytes: u64,
}

/// Counter snapshot of a [`SplitController`] for metrics reports. Only a
/// *dynamic* controller is ever reported — a frozen one must stay
/// unobservable, report included.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SplitStats {
    /// Epoch ticks processed.
    pub ticks: u64,
    /// Quota moves applied.
    pub resizes: u64,
    /// Current FS quota, blocks.
    pub fs_blocks: u64,
    /// Current NCache quota, bytes.
    pub ncache_bytes: u64,
    /// Cumulative FS ghost hits seen by the controller.
    pub fs_ghost_hits: u64,
    /// Cumulative NCache ghost hits seen by the controller.
    pub nc_ghost_hits: u64,
}

impl obs::StatsSnapshot for SplitStats {
    fn source(&self) -> &'static str {
        "adaptive"
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("ticks", self.ticks),
            ("resizes", self.resizes),
            ("fs_blocks", self.fs_blocks),
            ("ncache_bytes", self.ncache_bytes),
            ("fs_ghost_hits", self.fs_ghost_hits),
            ("nc_ghost_hits", self.nc_ghost_hits),
        ]
    }
}

/// The epoch-aligned split controller.
///
/// Fed cumulative [`SplitSample`]s at tick time, it diffs them into the
/// per-epoch [`SplitSignal`], compares marginal ghost-hit rates under
/// hysteresis + cooldown, and returns the quota move to apply — always
/// conserving `fs_blocks · QUOTA_BLOCK + ncache_bytes == total`.
#[derive(Clone, Debug)]
pub struct SplitController {
    cfg: SplitConfig,
    fs_blocks: u64,
    ncache_bytes: u64,
    total_bytes: u64,
    prev: SplitSample,
    window: SplitSignal,
    ticks: u64,
    resizes: u64,
    last_dir: Option<ResizeDir>,
    epochs_since_resize: u64,
}

impl SplitController {
    /// A controller starting from the given quotas.
    pub fn new(cfg: SplitConfig, fs_blocks: u64, ncache_bytes: u64) -> SplitController {
        SplitController {
            cfg,
            fs_blocks,
            ncache_bytes,
            total_bytes: fs_blocks * QUOTA_BLOCK + ncache_bytes,
            prev: SplitSample::default(),
            window: SplitSignal::default(),
            ticks: 0,
            resizes: 0,
            last_dir: None,
            epochs_since_resize: u64::MAX,
        }
    }

    /// True when the controller may move quota.
    pub fn is_dynamic(&self) -> bool {
        self.cfg.dynamic
    }

    /// The configuration.
    pub fn config(&self) -> &SplitConfig {
        &self.cfg
    }

    /// Current FS quota, blocks.
    pub fn fs_blocks(&self) -> u64 {
        self.fs_blocks
    }

    /// Current NCache quota, bytes.
    pub fn ncache_bytes(&self) -> u64 {
        self.ncache_bytes
    }

    /// The conserved total, bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Ticks processed.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Resizes applied.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    /// The most recent epoch window (the controller's eyes — windowed,
    /// not cumulative, so late phase shifts register within an epoch).
    pub fn window(&self) -> SplitSignal {
        self.window
    }

    /// Snapshot for metrics reports.
    pub fn split_stats(&self) -> SplitStats {
        SplitStats {
            ticks: self.ticks,
            resizes: self.resizes,
            fs_blocks: self.fs_blocks,
            ncache_bytes: self.ncache_bytes,
            fs_ghost_hits: self.prev.fs_ghost_hits,
            nc_ghost_hits: self.prev.nc_ghost_hits,
        }
    }

    /// One epoch tick: windows the cumulative sample, applies the
    /// decision rule, and returns the move (already reflected in the
    /// controller's quotas) if one fires.
    pub fn tick(&mut self, cumulative: SplitSample) -> Option<Resize> {
        self.window = cumulative.delta_since(&self.prev);
        self.prev = cumulative;
        self.ticks += 1;
        self.epochs_since_resize = self.epochs_since_resize.saturating_add(1);
        if !self.cfg.dynamic {
            return None;
        }
        let w = self.window;
        let dir = if w.fs_ghost_hits >= w.nc_ghost_hits + self.cfg.hysteresis {
            ResizeDir::ToFs
        } else if w.nc_ghost_hits >= w.fs_ghost_hits + self.cfg.hysteresis {
            ResizeDir::ToNcache
        } else {
            return None;
        };
        if self.last_dir == Some(dir.opposite()) && self.epochs_since_resize <= self.cfg.cooldown_epochs
        {
            return None;
        }
        let blocks = match dir {
            ResizeDir::ToFs => {
                let donor = (self.ncache_bytes.saturating_sub(self.cfg.min_ncache_bytes))
                    / QUOTA_BLOCK;
                self.cfg.step_blocks.min(donor)
            }
            ResizeDir::ToNcache => {
                let donor = self.fs_blocks.saturating_sub(self.cfg.min_fs_blocks);
                self.cfg.step_blocks.min(donor)
            }
        };
        if blocks == 0 {
            return None;
        }
        match dir {
            ResizeDir::ToFs => {
                self.fs_blocks += blocks;
                self.ncache_bytes -= blocks * QUOTA_BLOCK;
            }
            ResizeDir::ToNcache => {
                self.fs_blocks -= blocks;
                self.ncache_bytes += blocks * QUOTA_BLOCK;
            }
        }
        debug_assert_eq!(
            self.fs_blocks * QUOTA_BLOCK + self.ncache_bytes,
            self.total_bytes,
            "quota conservation"
        );
        self.last_dir = Some(dir);
        self.epochs_since_resize = 0;
        self.resizes += 1;
        Some(Resize {
            dir,
            blocks,
            fs_blocks: self.fs_blocks,
            ncache_bytes: self.ncache_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghost_holds_last_k_and_probes_without_removal() {
        let mut g = GhostLru::new(3);
        for (k, s) in [(1u64, 10u64), (2, 11), (3, 12), (4, 13)] {
            g.record(k, s);
        }
        assert_eq!(g.len(), 3);
        assert!(!g.contains(1), "oldest displaced");
        assert_eq!(g.keys_by_recency(), vec![2, 3, 4]);
        assert!(g.probe(3));
        assert!(g.probe(3), "probing does not remove");
        assert!(!g.probe(9));
        let s = g.stats();
        assert_eq!((s.probes, s.hits, s.records, s.displaced), (3, 2, 4, 1));
    }

    #[test]
    fn ghost_rerecord_moves_to_new_stamp() {
        let mut g = GhostLru::new(2);
        g.record(1, 10);
        g.record(2, 11);
        g.record(1, 12); // key 1 becomes newest
        g.record(3, 13); // displaces key 2, not key 1
        assert!(g.contains(1) && g.contains(3) && !g.contains(2));
    }

    #[test]
    fn ghost_forget_and_zero_cap() {
        let mut g = GhostLru::new(2);
        g.record(1, 10);
        g.forget(1);
        assert!(g.is_empty() && !g.probe(1));
        let mut z = GhostLru::new(0);
        z.record(1, 1);
        assert!(z.is_empty(), "zero-cap tail records nothing");
    }

    #[test]
    fn stats_absorb_sums() {
        let a = GhostStats {
            probes: 1,
            hits: 2,
            records: 3,
            displaced: 4,
        };
        let b = GhostStats {
            probes: 10,
            hits: 20,
            records: 30,
            displaced: 40,
        };
        let mut ab = a;
        ab.absorb(&b);
        let mut ba = b;
        ba.absorb(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.hits, 22);
    }

    fn sample(fs_ghost: u64, nc_ghost: u64) -> SplitSample {
        SplitSample {
            fs_ghost_hits: fs_ghost,
            nc_ghost_hits: nc_ghost,
            ..SplitSample::default()
        }
    }

    #[test]
    fn controller_windows_the_signal() {
        let mut c = SplitController::new(SplitConfig::adaptive(), 256, 1 << 20);
        c.tick(SplitSample {
            fs_hits: 90,
            fs_misses: 10,
            ..SplitSample::default()
        });
        assert_eq!(c.window().fs_hit_permille(), 900);
        // Second epoch is all misses: the windowed ratio collapses even
        // though the cumulative ratio stays near 50%.
        c.tick(SplitSample {
            fs_hits: 90,
            fs_misses: 110,
            ..SplitSample::default()
        });
        assert_eq!(c.window().fs_hit_permille(), 0);
        assert_eq!(c.window().fs_misses, 100);
    }

    #[test]
    fn frozen_controller_never_moves() {
        let mut c = SplitController::new(SplitConfig::static_split(), 256, 1 << 20);
        assert!(c.tick(sample(1_000, 0)).is_none());
        assert!(c.tick(sample(2_000, 0)).is_none());
        assert_eq!(c.fs_blocks(), 256);
        assert_eq!(c.resizes(), 0);
        assert_eq!(c.ticks(), 2);
    }

    #[test]
    fn resize_conserves_total_and_respects_bounds() {
        let cfg = SplitConfig {
            step_blocks: 64,
            min_fs_blocks: 16,
            min_ncache_bytes: 4 * QUOTA_BLOCK,
            ..SplitConfig::adaptive()
        };
        let mut c = SplitController::new(cfg, 32, 100 * QUOTA_BLOCK);
        let total = c.total_bytes();
        // FS starved: quota flows to FS until the NCache floor stops it.
        let mut cum = 0;
        for _ in 0..8 {
            cum += 100;
            c.tick(sample(cum, 0));
            assert_eq!(c.fs_blocks() * QUOTA_BLOCK + c.ncache_bytes(), total);
        }
        assert_eq!(c.ncache_bytes(), 4 * QUOTA_BLOCK, "clamped at the floor");
        assert_eq!(c.fs_blocks(), 128);
    }

    #[test]
    fn hysteresis_and_cooldown_bound_oscillation() {
        let cfg = SplitConfig {
            hysteresis: 10,
            cooldown_epochs: 1,
            ..SplitConfig::adaptive()
        };
        let mut c = SplitController::new(cfg, 256, 1 << 20);
        // Below the hysteresis margin: no move.
        assert!(c.tick(sample(5, 0)).is_none());
        // Clear FS advantage: move to FS.
        let r = c.tick(sample(105, 0)).expect("resize");
        assert_eq!(r.dir, ResizeDir::ToFs);
        // Immediate opposing signal is suppressed by the cooldown...
        assert!(c.tick(sample(105, 200)).is_none());
        // ...but persists, so the reversal lands the epoch after.
        let r = c.tick(sample(105, 400)).expect("reversal after cooldown");
        assert_eq!(r.dir, ResizeDir::ToNcache);
    }
}
