//! The NCache loadable-module facade.
//!
//! The Linux prototype inserts NCache "into the layer between the network
//! stack and the Ethernet device driver" (§4.1); the server code calls it
//! at four hook points, all exposed here:
//!
//! 1. [`NcacheModule::on_data_in`] — an iSCSI Data-In PDU carrying regular
//!    file data arrived: park the payload in the LBN cache, hand the file
//!    system a key-stamped placeholder block.
//! 2. [`NcacheModule::on_nfs_write`] — an NFS write request's payload
//!    arrived: park it in the FHO cache, hand back the stamp the server
//!    plants in the buffer cache.
//! 3. [`NcacheModule::on_flush_write`] — the file system is flushing a
//!    dirty (placeholder) block to storage: remap FHO→LBN and return the
//!    real payload for the outgoing iSCSI write.
//! 4. [`NcacheModule::on_transmit`] — an outgoing reply is about to hit
//!    the driver: substitute cached payload for stamped placeholders.

use netbuf::key::{CacheKey, Fho, KeyStamp, Lbn};
use netbuf::{BufPool, CopyLedger, NetBuf, Segment};

use crate::cache::{CacheFull, NetCacheStats, WritebackChunk};
use crate::shards::NetCacheShards;
use crate::substitute::{substitute_payload, SubstitutionReport};
use crate::CHUNK_PAYLOAD;

/// Configuration of the NCache module.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NcacheConfig {
    /// Pinned memory available to the cache, in bytes. This memory is
    /// unavailable to the file-system buffer cache (§4.1).
    pub capacity_bytes: u64,
    /// Descriptor overhead pinned per chunk (shrinks the effective cache;
    /// Figure 6(a)).
    pub per_chunk_overhead: u64,
    /// Whether outgoing packets are substituted (disabled only by the
    /// ablation studies).
    pub substitution: bool,
    /// Whether stored checksums are inherited instead of recomputed.
    pub csum_inherit: bool,
    /// Number of hash-selected cache shards (≥ 1). Sharding changes only
    /// which partition a key lives in — all shards share one pool and one
    /// LRU clock, so every observable (stats, evictions, bytes) is
    /// identical at any shard count.
    pub shards: usize,
}

impl NcacheConfig {
    /// A default-tuned module with the given pinned capacity.
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        NcacheConfig {
            capacity_bytes,
            per_chunk_overhead: 128,
            substitution: true,
            csum_inherit: true,
            shards: 1,
        }
    }

    /// The same configuration with `shards` cache shards.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }
}

/// The module: cache + configuration + pending writebacks.
///
/// See the crate-level example for typical use.
#[derive(Debug)]
pub struct NcacheModule {
    cache: NetCacheShards,
    config: NcacheConfig,
    ledger: CopyLedger,
    pending_writebacks: Vec<WritebackChunk>,
    substitution_totals: SubstitutionReport,
    recorder: Option<obs::Recorder>,
    invalidations: u64,
}

impl NcacheModule {
    /// Creates a module, pinning its memory from a fresh pool.
    pub fn new(config: NcacheConfig, ledger: &CopyLedger) -> Self {
        let pool = BufPool::new(config.capacity_bytes);
        NcacheModule {
            cache: NetCacheShards::new(pool, config.per_chunk_overhead, config.shards.max(1)),
            config,
            ledger: ledger.clone(),
            pending_writebacks: Vec::new(),
            substitution_totals: SubstitutionReport::default(),
            recorder: None,
            invalidations: 0,
        }
    }

    /// Emits every subsequent hook-level event (insertions, evictions,
    /// remaps, substitutions) on `rec`.
    pub fn set_recorder(&mut self, rec: obs::Recorder) {
        self.recorder = Some(rec);
    }

    fn emit(&self, kind: obs::EventKind) {
        if let Some(rec) = &self.recorder {
            rec.emit(kind);
        }
    }

    /// Emits one [`obs::EventKind::Eviction`] per chunk the cache
    /// reclaimed since `before` (inserts evict silently inside the cache;
    /// the stats delta recovers them).
    fn emit_eviction_delta(&self, before: NetCacheStats) {
        if self.recorder.is_none() {
            return;
        }
        let after = self.cache.stats();
        for _ in before.evicted_clean..after.evicted_clean {
            self.emit(obs::EventKind::Eviction {
                tier: "ncache",
                class: "data",
                dirty: false,
            });
        }
        for _ in before.evicted_dirty..after.evicted_dirty {
            self.emit(obs::EventKind::Eviction {
                tier: "ncache",
                class: "data",
                dirty: true,
            });
        }
    }

    /// Snapshot of per-shard stats, taken only when a recorder is live
    /// (so the fault-free untraced path pays nothing for it).
    fn shard_baseline(&self) -> Option<Vec<NetCacheStats>> {
        match &self.recorder {
            Some(rec) if rec.is_enabled() && self.cache.shard_count() > 1 => {
                Some(self.cache.per_shard_stats())
            }
            _ => None,
        }
    }

    /// Emits `shard.<i>.<counter>` deltas for every shard counter that
    /// moved since `before`. Only multi-shard traced runs produce these;
    /// the merged `cache.ncache.*` counters stay shard-count-invariant.
    fn emit_shard_deltas(&self, before: Option<Vec<NetCacheStats>>) {
        let (Some(before), Some(rec)) = (before, &self.recorder) else {
            return;
        };
        for (i, (b, a)) in before.iter().zip(self.cache.per_shard_stats()).enumerate() {
            for (name, was, now) in [
                ("lookups", b.lookups, a.lookups),
                ("hits", b.hits, a.hits),
                ("insertions", b.insertions, a.insertions),
                ("remaps", b.remaps, a.remaps),
                ("evicted_clean", b.evicted_clean, a.evicted_clean),
                ("evicted_dirty", b.evicted_dirty, a.evicted_dirty),
            ] {
                if now > was {
                    rec.add_counter(&format!("shard.{i}.{name}"), now - was);
                }
            }
        }
    }

    /// The module's configuration.
    pub fn config(&self) -> NcacheConfig {
        self.config
    }

    /// Cache operation counters, merged across shards (the CPU model
    /// charges per op).
    pub fn stats(&self) -> NetCacheStats {
        self.cache.stats()
    }

    /// Per-shard cache counters, indexed by shard.
    pub fn per_shard_stats(&self) -> Vec<NetCacheStats> {
        self.cache.per_shard_stats()
    }

    /// Number of cache shards.
    pub fn shard_count(&self) -> usize {
        self.cache.shard_count()
    }

    /// Totals of every substitution performed.
    pub fn substitution_totals(&self) -> SubstitutionReport {
        self.substitution_totals
    }

    /// Bytes currently pinned by the cache.
    pub fn pinned_bytes(&self) -> u64 {
        self.cache.pinned_bytes()
    }

    /// Chunks resident.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the LBN cache holds `lbn`.
    pub fn cache_contains_lbn(&self, lbn: Lbn) -> bool {
        self.cache.contains(lbn.into())
    }

    /// Whether the FHO cache holds `fho`.
    pub fn cache_contains_fho(&self, fho: Fho) -> bool {
        self.cache.contains(fho.into())
    }

    /// Whether a stamped placeholder would resolve right now (either of
    /// its keys resident), without promoting anything. Servers use this to
    /// *revalidate* placeholders before attaching them to a reply: under
    /// extreme memory pressure the cache may have evicted a chunk while a
    /// file-system placeholder still references it, and the reply must
    /// then take the copying path instead of shipping junk.
    pub fn resolvable(&self, stamp: &KeyStamp) -> bool {
        stamp.fho.is_some_and(|f| self.cache.contains(f.into()))
            || stamp.lbn.is_some_and(|l| self.cache.contains(l.into()))
    }

    /// Like [`NcacheModule::resolvable`], but additionally verifies each
    /// candidate chunk against its stored checksum (FHO first, so the
    /// freshness order of §3.4 holds even under faults). A mismatched
    /// chunk is corrupt: it is invalidated on the spot and the next key —
    /// or, if none resolves, the copying FS path — serves the request
    /// instead. Chunks with no stored checksum are stamped lazily here,
    /// so the fault-free fast path never pays for hashing.
    pub fn verify_resolvable(&mut self, stamp: &KeyStamp) -> bool {
        let keys = [
            stamp.fho.map(CacheKey::from),
            stamp.lbn.map(CacheKey::from),
        ];
        for key in keys.into_iter().flatten() {
            let Some(bytes) = self.cache.chunk_bytes(key) else {
                continue;
            };
            let computed = proto::csum::checksum(&bytes);
            match self.cache.stored_csum(key) {
                Some(stored) if stored != computed => {
                    self.cache.invalidate(key);
                    self.invalidations += 1;
                    if let Some(rec) = &self.recorder {
                        rec.add_counter("fault.invalidations", 1);
                    }
                }
                Some(_) => return true,
                None => {
                    self.cache.set_csum(key, computed);
                    return true;
                }
            }
        }
        false
    }

    /// Corrupt (checksum-mismatched) entries dropped by
    /// [`NcacheModule::verify_resolvable`].
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Fault injection: damages the stored checksum of the `pick`-th clean
    /// resident chunk (LRU order, wrapping), so the next verification
    /// covering it detects the corruption and invalidates. Dirty chunks
    /// are never poisoned — they are the sole copy of their data. Returns
    /// whether a chunk was poisoned.
    pub fn poison_clean_chunk(&mut self, pick: usize) -> bool {
        let keys = self.cache.clean_keys();
        if keys.is_empty() {
            return false;
        }
        let key = keys[pick % keys.len()];
        let bytes = self.cache.chunk_bytes(key).expect("clean key is resident");
        self.cache.set_csum(key, !proto::csum::checksum(&bytes));
        true
    }

    /// Direct access to the sharded cache (ablations and tests).
    pub fn cache_mut(&mut self) -> &mut NetCacheShards {
        &mut self.cache
    }

    /// A clone of the internally locked cache handle. The lane-parallel
    /// engine uses this to substitute outgoing replies *outside* the rig
    /// lock: the handle reaches the same shard set the module mutates.
    pub fn cache_handle(&self) -> NetCacheShards {
        self.cache.clone()
    }

    /// Folds a substitution report produced outside the module (the
    /// parallel engine's out-of-lock transmit path) into the totals, with
    /// the same recorder events [`NcacheModule::on_transmit`] would emit.
    pub fn absorb_substitution(&mut self, report: SubstitutionReport) {
        if report.substituted > 0 || report.missing > 0 {
            self.emit(obs::EventKind::Substitution {
                substituted: report.substituted,
                missing: report.missing,
            });
        }
        self.substitution_totals.absorb(report);
    }

    /// Advances the cache's shared recency clock past `stamp` (see
    /// [`NetCacheShards::advance_clock_past`]).
    pub fn advance_clock_past(&self, stamp: u64) {
        self.cache.advance_clock_past(stamp);
    }

    /// Attaches a ghost LRU tail shared across all cache shards (see
    /// [`NetCacheShards::enable_ghost`]).
    pub fn enable_ghost(&self, cap: usize) {
        self.cache.enable_ghost(cap);
    }

    /// Counters of the shared ghost tail, or `None` when none is attached.
    pub fn ghost_stats(&self) -> Option<crate::adaptive::GhostStats> {
        self.cache.ghost_stats()
    }

    /// Current pool capacity in bytes (the NCache side of the split).
    pub fn pool_capacity(&self) -> u64 {
        self.cache.pool().capacity()
    }

    /// Resizes the cache's pinned-memory quota and immediately evicts
    /// clean chunks (global LRU order) until residency fits. Dirty chunks
    /// are left for the demand path — a controller tick must not schedule
    /// writebacks. Returns the number of chunks evicted.
    pub fn set_pool_capacity(&self, bytes: u64) -> u64 {
        self.cache.pool().set_capacity(bytes);
        self.cache.shrink_clean_to_capacity()
    }

    /// Hook 1: regular-data iSCSI Data-In payload arrived. Caches the
    /// wire segments under `lbn` and returns the placeholder block the
    /// initiator hands the file system.
    ///
    /// # Errors
    ///
    /// [`CacheFull`] when the cache cannot admit the chunk.
    pub fn on_data_in(
        &mut self,
        lbn: Lbn,
        segs: Vec<Segment>,
        len: usize,
    ) -> Result<Segment, CacheFull> {
        let before = self.cache.stats();
        let shard_before = self.shard_baseline();
        let wbs = self.cache.insert_lbn(lbn, segs, len, false)?;
        self.emit_eviction_delta(before);
        self.emit_shard_deltas(shard_before);
        self.emit(obs::EventKind::CacheInsert {
            tier: "ncache-lbn",
            dirty: false,
        });
        self.pending_writebacks.extend(wbs);
        Ok(self.placeholder(KeyStamp::new().with_lbn(lbn)))
    }

    /// Hook 2: an NFS write request's payload arrived. Caches the wire
    /// segments under `fho` (dirty) and returns the stamp for the
    /// placeholder the server writes into the buffer cache.
    ///
    /// # Errors
    ///
    /// [`CacheFull`] when the cache cannot admit the chunk.
    pub fn on_nfs_write(
        &mut self,
        fho: Fho,
        segs: Vec<Segment>,
        len: usize,
    ) -> Result<KeyStamp, CacheFull> {
        let before = self.cache.stats();
        let shard_before = self.shard_baseline();
        let wbs = self.cache.insert_fho(fho, segs, len)?;
        self.emit_eviction_delta(before);
        self.emit_shard_deltas(shard_before);
        self.emit(obs::EventKind::CacheInsert {
            tier: "ncache-fho",
            dirty: true,
        });
        self.pending_writebacks.extend(wbs);
        Ok(KeyStamp::new().with_fho(fho))
    }

    /// Hook 3: the file system is flushing a dirty block to `lbn`. If the
    /// block is a stamped placeholder, remaps its FHO entry to `lbn` and
    /// returns the real payload for the outgoing iSCSI write (the entry
    /// stays resident, now clean — the write is on its way to storage).
    /// Returns `None` for unstamped (real-data / metadata) blocks, which
    /// take the ordinary copying path.
    pub fn on_flush_write(&mut self, block: &[u8], lbn: Lbn) -> Option<Vec<Segment>> {
        let stamp = KeyStamp::decode(block)?;
        let shard_before = self.shard_baseline();
        if let Some(fho) = stamp.fho {
            if let Some(segs) = self.cache.remap(fho, lbn) {
                self.cache.mark_clean(lbn.into());
                self.emit_shard_deltas(shard_before);
                self.emit(obs::EventKind::Remap);
                return Some(segs);
            }
        }
        // FHO absent (already remapped) or LBN-only stamp: serve from the
        // LBN cache if resident.
        if let Some(segs) = self.cache.lookup(lbn.into()) {
            self.cache.mark_clean(lbn.into());
            self.emit_shard_deltas(shard_before);
            self.emit(obs::EventKind::CacheAccess {
                tier: "ncache-lbn",
                hit: true,
            });
            return Some(segs);
        }
        self.emit_shard_deltas(shard_before);
        None
    }

    /// Hook 4: an outgoing packet reached the driver boundary. Substitutes
    /// stamped placeholders from the cache (no-op when substitution is
    /// disabled). When checksum inheritance is enabled the packet is marked
    /// checksum-inherited instead of being recomputed.
    pub fn on_transmit(&mut self, buf: &mut NetBuf) -> SubstitutionReport {
        if !self.config.substitution {
            return SubstitutionReport::default();
        }
        let shard_before = self.shard_baseline();
        let report = substitute_payload(buf, &self.cache);
        self.emit_shard_deltas(shard_before);
        if report.substituted > 0 {
            if self.config.csum_inherit {
                buf.inherit_csum();
            } else {
                // Ablation: without inheritance the substituted payload
                // must be checksummed afresh — the CPU cost the paper's
                // design avoids (§1).
                buf.compute_csum();
            }
        }
        if report.substituted > 0 || report.missing > 0 {
            self.emit(obs::EventKind::Substitution {
                substituted: report.substituted,
                missing: report.missing,
            });
        }
        self.substitution_totals.absorb(report);
        report
    }

    /// Drains dirty chunks displaced by cache pressure; the server must
    /// write each to the storage server.
    pub fn take_writebacks(&mut self) -> Vec<WritebackChunk> {
        std::mem::take(&mut self.pending_writebacks)
    }

    /// Builds a key-stamped placeholder block (junk + stamp).
    fn placeholder(&self, stamp: KeyStamp) -> Segment {
        let mut junk = vec![0u8; CHUNK_PAYLOAD];
        stamp.encode_into(&mut junk);
        self.ledger.charge_header_bytes(KeyStamp::LEN as u64);
        Segment::from_vec(junk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbuf::key::FileHandle;

    #[test]
    fn module_is_send() {
        // The module lives in a shared mutex handle cloned into every
        // lane; that handle is `Send + Sync` only if the module itself
        // is `Send`.
        fn assert_send<T: Send>() {}
        assert_send::<NcacheModule>();
    }

    fn module(capacity: u64) -> (NcacheModule, CopyLedger) {
        let ledger = CopyLedger::new();
        let m = NcacheModule::new(NcacheConfig::with_capacity(capacity), &ledger);
        (m, ledger)
    }

    fn block_segs(tag: u8) -> Vec<Segment> {
        vec![Segment::from_vec(vec![tag; CHUNK_PAYLOAD])]
    }

    #[test]
    fn data_in_caches_and_returns_placeholder() {
        let (mut m, _l) = module(1 << 20);
        let ph = m.on_data_in(Lbn(3), block_segs(7), CHUNK_PAYLOAD).expect("fits");
        assert!(m.cache_contains_lbn(Lbn(3)));
        let stamp = KeyStamp::decode(ph.as_slice()).expect("stamped");
        assert_eq!(stamp.lbn, Some(Lbn(3)));
        assert_eq!(stamp.fho, None);
        assert_eq!(ph.len(), CHUNK_PAYLOAD);
    }

    #[test]
    fn nfs_write_caches_dirty_fho() {
        let (mut m, _l) = module(1 << 20);
        let fho = Fho::new(FileHandle(1), 8192);
        let stamp = m.on_nfs_write(fho, block_segs(9), CHUNK_PAYLOAD).expect("fits");
        assert_eq!(stamp.fho, Some(fho));
        assert!(m.cache_contains_fho(fho));
        assert!(m.cache_mut().is_dirty(fho.into()));
    }

    #[test]
    fn flush_write_remaps_and_returns_payload() {
        let (mut m, _l) = module(1 << 20);
        let fho = Fho::new(FileHandle(1), 0);
        let stamp = m.on_nfs_write(fho, block_segs(0xCC), CHUNK_PAYLOAD).expect("fits");
        let mut placeholder = vec![0u8; CHUNK_PAYLOAD];
        stamp.encode_into(&mut placeholder);
        let segs = m.on_flush_write(&placeholder, Lbn(42)).expect("remapped");
        assert_eq!(segs[0].as_slice(), &vec![0xCC; CHUNK_PAYLOAD][..]);
        assert!(!m.cache_contains_fho(fho), "entry moved to the LBN cache");
        assert!(m.cache_contains_lbn(Lbn(42)));
        assert!(
            !m.cache_mut().is_dirty(Lbn(42).into()),
            "clean once the write is issued"
        );
    }

    #[test]
    fn flush_of_real_data_passes_through() {
        let (mut m, _l) = module(1 << 20);
        let block = vec![0x55u8; CHUNK_PAYLOAD];
        assert!(m.on_flush_write(&block, Lbn(1)).is_none());
    }

    #[test]
    fn flush_serves_lbn_cache_when_fho_already_remapped() {
        let (mut m, _l) = module(1 << 20);
        m.on_data_in(Lbn(8), block_segs(0xEE), CHUNK_PAYLOAD).expect("fits");
        m.cache_mut().lookup(Lbn(8).into());
        let mut placeholder = vec![0u8; CHUNK_PAYLOAD];
        KeyStamp::new().with_lbn(Lbn(8)).encode_into(&mut placeholder);
        let segs = m.on_flush_write(&placeholder, Lbn(8)).expect("served");
        assert_eq!(segs[0].as_slice()[0], 0xEE);
    }

    #[test]
    fn transmit_substitutes_and_inherits_csum() {
        let (mut m, ledger) = module(1 << 20);
        let ph = m.on_data_in(Lbn(1), block_segs(0x77), CHUNK_PAYLOAD).expect("fits");
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(ph);
        let r = m.on_transmit(&mut pkt);
        assert_eq!(r.substituted, 1);
        assert_eq!(pkt.csum_state(), netbuf::buf::CsumState::Inherited);
        assert_eq!(pkt.copy_payload_to_vec(), vec![0x77; CHUNK_PAYLOAD]);
        assert_eq!(m.substitution_totals().substituted, 1);
    }

    #[test]
    fn substitution_can_be_disabled() {
        let ledger = CopyLedger::new();
        let mut config = NcacheConfig::with_capacity(1 << 20);
        config.substitution = false;
        let mut m = NcacheModule::new(config, &ledger);
        let ph = m.on_data_in(Lbn(1), block_segs(0x11), CHUNK_PAYLOAD).expect("fits");
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(ph.clone());
        let r = m.on_transmit(&mut pkt);
        assert_eq!(r.substituted, 0);
        // Placeholder junk goes out unmodified (the ablation's behaviour).
        assert_eq!(pkt.copy_payload_to_vec(), ph.as_slice().to_vec());
    }

    #[test]
    fn evictions_surface_as_writebacks() {
        // Capacity for two chunks (plus overhead); the third insert evicts
        // the dirty FHO chunk? No — dirty FHO is pinned; use dirty LBN.
        let ledger = CopyLedger::new();
        let config = NcacheConfig {
            capacity_bytes: 2 * (CHUNK_PAYLOAD as u64 + 128),
            per_chunk_overhead: 128,
            substitution: true,
            csum_inherit: true,
            shards: 1,
        };
        let mut m = NcacheModule::new(config, &ledger);
        m.cache_mut()
            .insert_lbn(Lbn(1), block_segs(1), CHUNK_PAYLOAD, true)
            .expect("fits");
        m.on_data_in(Lbn(2), block_segs(2), CHUNK_PAYLOAD).expect("fits");
        m.on_data_in(Lbn(3), block_segs(3), CHUNK_PAYLOAD).expect("evicts");
        let wbs = m.take_writebacks();
        assert_eq!(wbs.len(), 1);
        assert_eq!(wbs[0].lbn, Lbn(1));
        assert!(m.take_writebacks().is_empty(), "drained");
    }

    #[test]
    fn recorder_sees_hook_events() {
        let (mut m, ledger) = module(1 << 20);
        let rec = obs::Recorder::new();
        rec.enable(obs::TraceConfig::default());
        m.set_recorder(rec.clone());

        let fho = Fho::new(FileHandle(1), 0);
        let stamp = m.on_nfs_write(fho, block_segs(0xAB), CHUNK_PAYLOAD).expect("fits");
        let mut placeholder = vec![0u8; CHUNK_PAYLOAD];
        stamp.encode_into(&mut placeholder);
        m.on_flush_write(&placeholder, Lbn(5)).expect("remapped");

        let ph = m.on_data_in(Lbn(9), block_segs(0x11), CHUNK_PAYLOAD).expect("fits");
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(ph);
        m.on_transmit(&mut pkt);

        assert_eq!(rec.counter("cache.ncache-fho.insertions"), 1);
        assert_eq!(rec.counter("cache.ncache-lbn.insertions"), 1);
        assert_eq!(rec.counter("ncache.remaps"), 1);
        assert_eq!(rec.counter("ncache.substituted"), 1);
        assert_eq!(rec.counter("ncache.substitution_missing"), 0);
    }

    #[test]
    fn recorder_sees_insert_pressure_evictions() {
        let ledger = CopyLedger::new();
        let config = NcacheConfig {
            capacity_bytes: 2 * (CHUNK_PAYLOAD as u64 + 128),
            per_chunk_overhead: 128,
            substitution: true,
            csum_inherit: true,
            shards: 1,
        };
        let mut m = NcacheModule::new(config, &ledger);
        let rec = obs::Recorder::new();
        rec.enable(obs::TraceConfig::default());
        m.set_recorder(rec.clone());
        m.on_data_in(Lbn(1), block_segs(1), CHUNK_PAYLOAD).expect("fits");
        m.on_data_in(Lbn(2), block_segs(2), CHUNK_PAYLOAD).expect("fits");
        m.on_data_in(Lbn(3), block_segs(3), CHUNK_PAYLOAD).expect("evicts");
        assert_eq!(rec.counter("cache.ncache.evicted_clean"), 1);
        assert_eq!(rec.counter("cache.ncache-lbn.insertions"), 3);
    }

    #[test]
    fn verify_resolvable_stamps_then_accepts() {
        let (mut m, _l) = module(1 << 20);
        let ph = m.on_data_in(Lbn(4), block_segs(0x42), CHUNK_PAYLOAD).expect("fits");
        let stamp = KeyStamp::decode(ph.as_slice()).expect("stamped");
        assert!(m.verify_resolvable(&stamp), "first pass stamps the csum");
        assert!(m.verify_resolvable(&stamp), "second pass verifies it");
        assert_eq!(m.invalidations(), 0);
        assert!(m.cache_contains_lbn(Lbn(4)));
    }

    #[test]
    fn verify_resolvable_invalidates_poisoned_chunks() {
        let (mut m, _l) = module(1 << 20);
        let ph = m.on_data_in(Lbn(4), block_segs(0x42), CHUNK_PAYLOAD).expect("fits");
        let stamp = KeyStamp::decode(ph.as_slice()).expect("stamped");
        let rec = obs::Recorder::new();
        rec.enable(obs::TraceConfig::default());
        m.set_recorder(rec.clone());
        assert!(m.poison_clean_chunk(0));
        assert!(!m.verify_resolvable(&stamp), "corrupt entry must not resolve");
        assert!(!m.cache_contains_lbn(Lbn(4)), "corrupt entry dropped");
        assert_eq!(m.invalidations(), 1);
        assert_eq!(rec.counter("fault.invalidations"), 1);
        // Refetch repopulates; the fresh entry verifies clean again.
        let ph = m.on_data_in(Lbn(4), block_segs(0x42), CHUNK_PAYLOAD).expect("fits");
        let stamp = KeyStamp::decode(ph.as_slice()).expect("stamped");
        assert!(m.verify_resolvable(&stamp));
    }

    #[test]
    fn poison_skips_dirty_chunks() {
        let (mut m, _l) = module(1 << 20);
        let fho = Fho::new(FileHandle(3), 0);
        m.on_nfs_write(fho, block_segs(0xDD), CHUNK_PAYLOAD).expect("fits");
        assert!(!m.poison_clean_chunk(0), "dirty FHO chunk is never a target");
        let stamp = KeyStamp::new().with_fho(fho);
        assert!(m.verify_resolvable(&stamp), "sole data copy stays intact");
    }

    #[test]
    fn pinned_accounting_visible() {
        let (mut m, _l) = module(1 << 20);
        assert_eq!(m.pinned_bytes(), 0);
        m.on_data_in(Lbn(1), block_segs(1), CHUNK_PAYLOAD).expect("fits");
        assert_eq!(m.pinned_bytes(), CHUNK_PAYLOAD as u64 + 128);
        assert_eq!(m.cache_len(), 1);
    }
}
