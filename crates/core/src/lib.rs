#![warn(missing_docs)]
//! NCache: the network-centric buffer cache — the paper's primary
//! contribution.
//!
//! A pass-through server (an NFS server backed by iSCSI storage, an
//! in-kernel static web server) mostly relays payload bytes it never
//! interprets. NCache exploits that: payload packets are parked in a
//! *network-ready* cache the moment they arrive, the layers above exchange
//! only small keys ("logical copying"), and when a reply is about to hit
//! the wire the module sitting between the network stack and the device
//! driver **substitutes** the cached payload for the key-carrying
//! placeholder. Physical copying of regular data disappears from the
//! server's fast paths.
//!
//! The pieces, mapped to the paper:
//!
//! * [`chunk::Chunk`] — "fixed-sized data chunks, each of which consists of
//!   a list of network buffers" (§3.4), pinned in device-driver memory
//!   through a [`netbuf::BufPool`].
//! * [`cache::NetCache`] — the two-part cache: an **LBN cache** for data
//!   arriving from the iSCSI target and an **FHO cache** for data arriving
//!   in NFS write requests, chained on one LRU list; clean chunks free
//!   silently, dirty chunks write back to the storage server first (§3.4).
//! * [`cache::NetCache::remap`] — converting a dirty FHO entry to an LBN
//!   entry when the file system flushes the corresponding buffer (§3.4,
//!   Figure 3).
//! * [`cache::NetCache::resolve`] — FHO-before-LBN lookup so "NFS clients
//!   always receive the most up-to-date data" (§3.4).
//! * [`substitute`] — packet substitution at the driver boundary (§3.2
//!   step 6) driven by the [`netbuf::key::KeyStamp`] planted in
//!   placeholder blocks.
//! * [`tracker::HttpTxTracker`] — the HTTP stream tracker that splits
//!   kHTTPd responses at the `\r\n\r\n` boundary and substitutes only body
//!   packets (§3.5, §4.3).
//! * [`module::NcacheModule`] — the loadable-module facade the server
//!   hook points call; owns the cache, the configuration, and the
//!   operation counters the CPU model charges.
//!
//! # Examples
//!
//! ```
//! use ncache::{NcacheConfig, NcacheModule};
//! use netbuf::{CopyLedger, Segment};
//! use netbuf::key::Lbn;
//!
//! let ledger = CopyLedger::new();
//! let mut module = NcacheModule::new(NcacheConfig::with_capacity(1 << 20), &ledger);
//! // An iSCSI read response arrives: cache it and get a placeholder for
//! // the file system.
//! let payload = Segment::from_vec(vec![42u8; 4096]);
//! let placeholder = module.on_data_in(Lbn(7), vec![payload], 4096)?;
//! // Later, an NFS read reply carrying that placeholder is substituted.
//! assert!(module.cache_contains_lbn(Lbn(7)));
//! # Ok::<(), ncache::CacheFull>(())
//! ```

pub mod adaptive;
pub mod cache;
pub mod chunk;
pub mod epoch;
pub mod module;
pub mod shards;
pub mod substitute;
pub mod tracker;

pub use adaptive::{
    GhostLru, GhostStats, Resize, ResizeDir, SplitConfig, SplitController, SplitSample,
    SplitStats,
};
pub use cache::{CacheFull, NetCache, NetCacheStats, WritebackChunk};
pub use chunk::Chunk;
pub use module::{NcacheConfig, NcacheModule};
pub use shards::{shard_of, NetCacheShards};
pub use substitute::{substitute_payload, SubstitutionReport};
pub use tracker::{HttpTxTracker, TxDisposition};

/// Payload bytes per cache chunk: one file-system block.
pub const CHUNK_PAYLOAD: usize = 4096;
