//! Cache chunks: pinned lists of network buffers.

use netbuf::pool::Pinned;
use netbuf::Segment;

/// One cached block: the network-buffer segments that carried it, exactly
/// as they arrived off the wire, plus pinned-memory accounting.
///
/// The segments are shared ([`Segment`] is reference-counted), so handing a
/// chunk's payload to an outgoing packet is pointer manipulation — the
/// logical copy at the heart of the design.
#[derive(Debug)]
pub struct Chunk {
    segs: Vec<Segment>,
    len: usize,
    dirty: bool,
    /// Stored checksum carried over from the payload's originator; packets
    /// substituted from this chunk inherit it instead of recomputing.
    csum: Option<u16>,
    _pin: Pinned,
}

impl Chunk {
    /// Assembles a chunk from arrived network-buffer segments. `len` is
    /// the payload length (the segments may carry trailing slack).
    ///
    /// # Panics
    ///
    /// Panics if the segments hold fewer than `len` bytes.
    pub fn new(segs: Vec<Segment>, len: usize, dirty: bool, pin: Pinned) -> Self {
        let have: usize = segs.iter().map(Segment::len).sum();
        assert!(have >= len, "segments hold {have} bytes, need {len}");
        Chunk {
            segs,
            len,
            dirty,
            csum: None,
            _pin: pin,
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the chunk holds no payload.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the chunk holds data newer than the storage server's copy.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Marks the chunk clean (after its data was written back).
    pub fn mark_clean(&mut self) {
        self.dirty = false;
    }

    /// Marks the chunk dirty.
    pub fn mark_dirty(&mut self) {
        self.dirty = true;
    }

    /// The stored (inheritable) checksum, if one was recorded.
    pub fn stored_csum(&self) -> Option<u16> {
        self.csum
    }

    /// Records a checksum for later inheritance.
    pub fn set_csum(&mut self, csum: u16) {
        self.csum = Some(csum);
    }

    /// Shares the payload segments (logical copy), clipped to the payload
    /// length.
    pub fn share_segments(&self) -> Vec<Segment> {
        let mut out = Vec::with_capacity(self.segs.len());
        let mut remaining = self.len;
        for seg in &self.segs {
            if remaining == 0 {
                break;
            }
            let take = seg.len().min(remaining);
            out.push(seg.slice(0, take));
            remaining -= take;
        }
        out
    }

    /// Physically materializes the payload (for integrity checks and
    /// writeback paths that must hand bytes to a copying interface).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.len);
        for seg in self.share_segments() {
            v.extend_from_slice(seg.as_slice());
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbuf::BufPool;

    fn pin(pool: &BufPool, n: u64) -> Pinned {
        pool.pin(n).expect("capacity")
    }

    #[test]
    fn share_segments_clips_to_len() {
        let pool = BufPool::new(1 << 20);
        let segs = vec![
            Segment::from_vec(vec![1; 1000]),
            Segment::from_vec(vec![2; 1000]),
        ];
        let c = Chunk::new(segs, 1500, false, pin(&pool, 4096));
        let shared = c.share_segments();
        assert_eq!(shared.len(), 2);
        assert_eq!(shared[0].len(), 1000);
        assert_eq!(shared[1].len(), 500);
        assert_eq!(c.to_bytes().len(), 1500);
        assert_eq!(c.len(), 1500);
        assert!(!c.is_empty());
    }

    #[test]
    fn share_is_logical_not_physical() {
        let pool = BufPool::new(1 << 20);
        let seg = Segment::from_vec(vec![7; 4096]);
        let c = Chunk::new(vec![seg.clone()], 4096, false, pin(&pool, 4096));
        let shared = c.share_segments();
        assert!(shared[0].same_storage(&seg));
    }

    #[test]
    fn dirty_lifecycle() {
        let pool = BufPool::new(1 << 20);
        let mut c = Chunk::new(
            vec![Segment::from_vec(vec![0; 64])],
            64,
            true,
            pin(&pool, 64),
        );
        assert!(c.is_dirty());
        c.mark_clean();
        assert!(!c.is_dirty());
        c.mark_dirty();
        assert!(c.is_dirty());
    }

    #[test]
    fn checksum_storage() {
        let pool = BufPool::new(1 << 20);
        let mut c = Chunk::new(
            vec![Segment::from_vec(vec![0; 64])],
            64,
            false,
            pin(&pool, 64),
        );
        assert_eq!(c.stored_csum(), None);
        c.set_csum(0xBEEF);
        assert_eq!(c.stored_csum(), Some(0xBEEF));
    }

    #[test]
    fn dropping_chunk_releases_pin() {
        let pool = BufPool::new(100);
        let c = Chunk::new(
            vec![Segment::from_vec(vec![0; 10])],
            10,
            false,
            pin(&pool, 60),
        );
        assert_eq!(pool.pinned(), 60);
        drop(c);
        assert_eq!(pool.pinned(), 0);
    }

    #[test]
    #[should_panic(expected = "need")]
    fn short_segments_panic() {
        let pool = BufPool::new(1 << 20);
        let _ = Chunk::new(
            vec![Segment::from_vec(vec![0; 10])],
            20,
            false,
            pin(&pool, 10),
        );
    }
}
