//! HTTP transmit-stream tracking for kHTTPd (§3.5, §4.3).
//!
//! NCache applied to a web server must tell response *headers* (metadata:
//! pass through untouched) from response *bodies* (regular data: eligible
//! for substitution). The tracker watches each connection's outgoing byte
//! stream, finds the `\r\n\r\n` boundary, reads `Content-Length`, and
//! classifies every transmitted byte range. After a body completes it
//! re-arms for the next response on the connection.

use proto::http::{find_header_end, HttpResponseHeader};

/// Classification of a range of outgoing stream bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxDisposition {
    /// Header bytes: metadata, pass through.
    Header(usize),
    /// Body bytes: regular data, eligible for substitution.
    Body(usize),
}

impl TxDisposition {
    /// The byte count this range covers.
    pub fn len(&self) -> usize {
        match *self {
            TxDisposition::Header(n) | TxDisposition::Body(n) => n,
        }
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Debug)]
enum State {
    /// Accumulating header bytes until the boundary appears.
    Header { seen: Vec<u8> },
    /// Inside a body with `remaining` bytes to go.
    Body { remaining: u64 },
}

/// Per-connection transmit tracker.
///
/// # Examples
///
/// ```
/// use ncache::tracker::{HttpTxTracker, TxDisposition};
///
/// let mut t = HttpTxTracker::new();
/// let header = b"HTTP/1.0 200 OK\r\nContent-Length: 5\r\n\r\n";
/// let mut stream = header.to_vec();
/// stream.extend_from_slice(b"hello");
/// let parts = t.feed(&stream);
/// assert_eq!(parts, vec![
///     TxDisposition::Header(header.len()),
///     TxDisposition::Body(5),
/// ]);
/// ```
#[derive(Debug)]
pub struct HttpTxTracker {
    state: State,
    responses_seen: u64,
}

impl HttpTxTracker {
    /// A tracker at the start of a connection.
    pub fn new() -> Self {
        HttpTxTracker {
            state: State::Header { seen: Vec::new() },
            responses_seen: 0,
        }
    }

    /// Responses whose headers have completed so far.
    pub fn responses_seen(&self) -> u64 {
        self.responses_seen
    }

    /// Whether the tracker is currently inside a response body.
    pub fn in_body(&self) -> bool {
        matches!(self.state, State::Body { .. })
    }

    /// Feeds the next `chunk` of outgoing stream bytes, returning the
    /// classification of each sub-range in order. Ranges never overlap and
    /// exactly cover the chunk.
    pub fn feed(&mut self, chunk: &[u8]) -> Vec<TxDisposition> {
        let mut out = Vec::new();
        let mut at = 0usize;
        while at < chunk.len() {
            match &mut self.state {
                State::Header { seen } => {
                    let start_len = seen.len();
                    seen.extend_from_slice(&chunk[at..]);
                    match find_header_end(seen) {
                        Some(end) => {
                            // Bytes of *this chunk* that belong to the header:
                            let header_in_chunk = end - start_len;
                            out.push(TxDisposition::Header(header_in_chunk));
                            let content_length = HttpResponseHeader::decode(seen)
                                .map(|(h, _)| h.content_length)
                                .unwrap_or(0);
                            self.responses_seen += 1;
                            self.state = State::Body {
                                remaining: content_length,
                            };
                            at += header_in_chunk;
                            // Zero-length bodies re-arm immediately.
                            self.maybe_rearm();
                        }
                        None => {
                            // Whole remainder is header-so-far.
                            out.push(TxDisposition::Header(chunk.len() - at));
                            at = chunk.len();
                        }
                    }
                }
                State::Body { remaining } => {
                    let take = ((chunk.len() - at) as u64).min(*remaining) as usize;
                    out.push(TxDisposition::Body(take));
                    *remaining -= take as u64;
                    at += take;
                    self.maybe_rearm();
                }
            }
        }
        out
    }

    fn maybe_rearm(&mut self) {
        if let State::Body { remaining: 0 } = self.state {
            self.state = State::Header { seen: Vec::new() };
        }
    }
}

impl Default for HttpTxTracker {
    fn default() -> Self {
        HttpTxTracker::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response(body_len: usize) -> Vec<u8> {
        let mut v =
            format!("HTTP/1.0 200 OK\r\nContent-Length: {body_len}\r\n\r\n").into_bytes();
        v.extend(std::iter::repeat_n(0x42u8, body_len));
        v
    }

    #[test]
    fn whole_response_in_one_chunk() {
        let mut t = HttpTxTracker::new();
        let resp = response(10);
        let header_len = resp.len() - 10;
        assert_eq!(
            t.feed(&resp),
            vec![TxDisposition::Header(header_len), TxDisposition::Body(10)]
        );
        assert_eq!(t.responses_seen(), 1);
        assert!(!t.in_body(), "re-armed after body completes");
    }

    #[test]
    fn split_mid_header() {
        let mut t = HttpTxTracker::new();
        let resp = response(4);
        let header_len = resp.len() - 4;
        let cut = 10; // inside the header
        let p1 = t.feed(&resp[..cut]);
        assert_eq!(p1, vec![TxDisposition::Header(cut)]);
        let p2 = t.feed(&resp[cut..]);
        assert_eq!(
            p2,
            vec![
                TxDisposition::Header(header_len - cut),
                TxDisposition::Body(4)
            ]
        );
    }

    #[test]
    fn split_mid_body() {
        let mut t = HttpTxTracker::new();
        let resp = response(1000);
        let header_len = resp.len() - 1000;
        t.feed(&resp[..header_len + 100]);
        assert!(t.in_body());
        let p = t.feed(&resp[header_len + 100..]);
        assert_eq!(p, vec![TxDisposition::Body(900)]);
        assert!(!t.in_body());
    }

    #[test]
    fn byte_at_a_time() {
        let mut t = HttpTxTracker::new();
        let resp = response(3);
        let mut header = 0usize;
        let mut body = 0usize;
        for b in &resp {
            for d in t.feed(std::slice::from_ref(b)) {
                match d {
                    TxDisposition::Header(n) => header += n,
                    TxDisposition::Body(n) => body += n,
                }
            }
        }
        assert_eq!(header, resp.len() - 3);
        assert_eq!(body, 3);
    }

    #[test]
    fn consecutive_responses_on_one_connection() {
        let mut t = HttpTxTracker::new();
        let mut stream = response(5);
        stream.extend(response(7));
        let parts = t.feed(&stream);
        let bodies: usize = parts
            .iter()
            .filter_map(|d| match d {
                TxDisposition::Body(n) => Some(*n),
                _ => None,
            })
            .sum();
        assert_eq!(bodies, 12);
        assert_eq!(t.responses_seen(), 2);
    }

    #[test]
    fn zero_length_body_rearms() {
        let mut t = HttpTxTracker::new();
        let resp = response(0);
        let parts = t.feed(&resp);
        assert_eq!(parts, vec![TxDisposition::Header(resp.len())]);
        assert!(!t.in_body());
        // Next response parses fine.
        let r2 = response(2);
        let parts = t.feed(&r2);
        assert_eq!(
            parts,
            vec![TxDisposition::Header(r2.len() - 2), TxDisposition::Body(2)]
        );
    }

    #[test]
    fn ranges_exactly_cover_every_chunk() {
        let mut t = HttpTxTracker::new();
        let mut stream = response(100);
        stream.extend(response(0));
        stream.extend(response(55));
        for chunk in stream.chunks(13) {
            let total: usize = t.feed(chunk).iter().map(TxDisposition::len).sum();
            assert_eq!(total, chunk.len());
        }
        assert_eq!(t.responses_seen(), 3);
    }

    #[test]
    fn disposition_len_and_empty() {
        assert_eq!(TxDisposition::Header(4).len(), 4);
        assert_eq!(TxDisposition::Body(0).len(), 0);
        assert!(TxDisposition::Body(0).is_empty());
        assert!(!TxDisposition::Header(1).is_empty());
    }
}
