//! Seeded concurrency property for the per-shard-locked cache.
//!
//! The lock-decomposition refactor replaced one big cache lock with a
//! `RwLock` per shard (plus a read-locked lookup fast path). The claim it
//! must uphold: for workloads whose operations commute — shared keys are
//! only read, written keys are private to one lane — any thread
//! interleaving over the fine-grained locks reaches **exactly** the state
//! a single global lock would have reached. Epoch windows make even the
//! recency stamps interleaving-invariant, so the comparison can be total:
//! counters, residency, chunk contents, pinned bytes, and the global LRU
//! order itself.
//!
//! The oracle is the single-lock execution: one big lock admits some
//! serialization of the ops, and because the ops commute every
//! serialization is equivalent, so we run the canonical one (epoch-major,
//! tie-minor — the deterministic merge order of the parallel engine) on
//! one thread against an identical shard set.

use check::gen::*;
use check::{prop_assert, prop_assert_eq, property};
use ncache::epoch::{enter_window, stamp_base};
use ncache::NetCacheShards;
use netbuf::key::{CacheKey, Fho, FileHandle, Lbn};
use netbuf::{BufPool, Segment};

const PAYLOAD: usize = 1024;
const WARM_LBNS: u64 = 16;

fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer — the workspace's standard seed mixer.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn seg(tag: u8) -> Vec<Segment> {
    vec![Segment::from_vec(vec![tag; PAYLOAD])]
}

/// One lane op in the commuting workload. Lookups touch the shared warm
/// set; inserts and remaps touch keys private to `(thread, op)`, so every
/// pair of ops from different lanes commutes.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Read a shared warm block (hit: promotion + counters only).
    Lookup(Lbn),
    /// Insert a fresh private LBN chunk.
    Insert(Lbn, u8),
    /// Flush a pre-inserted private FHO entry to a private LBN — the
    /// one two-lock path (cross-shard chunk migration).
    Remap(Fho, Lbn),
}

fn op_for(seed: u64, t: u64, k: u64) -> Op {
    let h = mix(seed ^ (t << 32) ^ k);
    let tag = (h >> 16) as u8;
    match h % 3 {
        0 => Op::Lookup(Lbn((h >> 8) % WARM_LBNS)),
        1 => Op::Insert(Lbn(10_000 + t * 100 + k), tag),
        _ => Op::Remap(
            Fho::new(FileHandle(t + 1), k * 4096),
            Lbn(20_000 + t * 100 + k),
        ),
    }
}

fn apply(cache: &NetCacheShards, op: Op) {
    match op {
        Op::Lookup(lbn) => {
            cache.lookup(lbn.into());
        }
        Op::Insert(lbn, tag) => {
            cache.insert_lbn(lbn, seg(tag), PAYLOAD, false).expect("ample capacity");
        }
        Op::Remap(fho, lbn) => {
            cache.remap(fho, lbn).expect("FHO entry pre-inserted");
        }
    }
}

/// Builds a warmed shard set: the shared read set plus one dirty FHO
/// entry per `(thread, op)` slot, so every possible Remap has a source.
/// Warming runs outside any epoch window on a fresh clock, so both the
/// concurrent run and the oracle draw identical warm-up stamps.
fn warmed(shards: usize, threads: u64, ops: u64) -> NetCacheShards {
    let cache = NetCacheShards::new(BufPool::new(1 << 22), 0, shards);
    for b in 0..WARM_LBNS {
        cache.insert_lbn(Lbn(b), seg(b as u8), PAYLOAD, false).expect("fits");
    }
    for t in 0..threads {
        for k in 0..ops {
            cache
                .insert_fho(Fho::new(FileHandle(t + 1), k * 4096), seg((t * 31 + k) as u8), PAYLOAD)
                .expect("fits");
        }
    }
    cache
}

/// Every key the workload can have touched, in a fixed order.
fn all_keys(threads: u64, ops: u64) -> Vec<CacheKey> {
    let mut keys: Vec<CacheKey> = (0..WARM_LBNS).map(|b| Lbn(b).into()).collect();
    for t in 0..threads {
        for k in 0..ops {
            keys.push(CacheKey::Fho(Fho::new(FileHandle(t + 1), k * 4096)));
            keys.push(Lbn(10_000 + t * 100 + k).into());
            keys.push(Lbn(20_000 + t * 100 + k).into());
        }
    }
    keys
}

property! {
    fn prop_concurrent_interleavings_match_single_lock_oracle(
        seed in any_u64(),
        threads in ints(2u64..5),
        ops in ints(4u64..20),
        shards in ints(1usize..9),
    ) {
        // Concurrent run: every lane on its own host thread, each op in
        // its (epoch = op index, tie = lane) window. The work-stealing of
        // real schedulers is modelled by the OS scheduler itself.
        let live = warmed(shards, threads, ops);
        std::thread::scope(|s| {
            for t in 0..threads {
                let live = live.clone();
                s.spawn(move || {
                    for k in 0..ops {
                        let _w = enter_window(stamp_base(k, t));
                        apply(&live, op_for(seed, t, k));
                    }
                });
            }
        });

        // Single-lock oracle: the canonical serialization on one thread,
        // same windows, identical warm state.
        let oracle = warmed(shards, threads, ops);
        for k in 0..ops {
            for t in 0..threads {
                let _w = enter_window(stamp_base(k, t));
                apply(&oracle, op_for(seed, t, k));
            }
        }

        prop_assert_eq!(live.stats(), oracle.stats());
        prop_assert_eq!(live.per_shard_stats(), oracle.per_shard_stats());
        prop_assert_eq!(live.len(), oracle.len());
        prop_assert_eq!(live.pinned_bytes(), oracle.pinned_bytes());
        for key in all_keys(threads, ops) {
            prop_assert_eq!(live.contains(key), oracle.contains(key));
            prop_assert_eq!(live.chunk_bytes(key), oracle.chunk_bytes(key));
            prop_assert_eq!(live.is_dirty(key), oracle.is_dirty(key));
        }
        // The strongest clause: epoch windows make the *global LRU order*
        // itself a pure function of the workload, not the interleaving.
        prop_assert_eq!(live.clean_keys(), oracle.clean_keys());
        prop_assert!(live.stats().evicted_clean == 0, "ample capacity: no evictions");
    }
}
