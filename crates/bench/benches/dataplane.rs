//! Host-performance micro-benchmarks of the core data-plane operations —
//! the operations whose counts drive the simulated CPU model. These time
//! the *library*, not the simulated hardware: a regression here means the
//! Rust implementation itself got slower.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ncache::cache::NetCache;
use ncache::substitute::substitute_payload;
use ncache::{NcacheConfig, NcacheModule};
use netbuf::key::{Fho, FileHandle, KeyStamp, Lbn};
use netbuf::{BufPool, CopyLedger, NetBuf, Segment};

const BLOCK: usize = 4096;

fn block_segs(tag: u8) -> Vec<Segment> {
    vec![Segment::from_vec(vec![tag; BLOCK])]
}

fn bench_cache_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("netcache");
    g.bench_function("insert_lbn", |b| {
        b.iter_batched(
            || NetCache::new(BufPool::new(1 << 30), 128),
            |mut cache| {
                for i in 0..256u64 {
                    cache
                        .insert_lbn(Lbn(i), block_segs(i as u8), BLOCK, false)
                        .expect("fits");
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("lookup_hit", |b| {
        let mut cache = NetCache::new(BufPool::new(1 << 30), 128);
        for i in 0..1024u64 {
            cache
                .insert_lbn(Lbn(i), block_segs(i as u8), BLOCK, false)
                .expect("fits");
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            cache.lookup(Lbn(i).into())
        })
    });
    g.bench_function("remap", |b| {
        b.iter_batched(
            || {
                let mut cache = NetCache::new(BufPool::new(1 << 30), 128);
                for i in 0..128u64 {
                    cache
                        .insert_fho(Fho::new(FileHandle(1), i * BLOCK as u64), block_segs(1), BLOCK)
                        .expect("fits");
                }
                cache
            },
            |mut cache| {
                for i in 0..128u64 {
                    cache.remap(Fho::new(FileHandle(1), i * BLOCK as u64), Lbn(i));
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_substitution(c: &mut Criterion) {
    let mut g = c.benchmark_group("substitution");
    g.throughput(Throughput::Bytes(8 * BLOCK as u64));
    g.bench_function("substitute_8_blocks", |b| {
        let mut cache = NetCache::new(BufPool::new(1 << 30), 128);
        for i in 0..8u64 {
            cache
                .insert_lbn(Lbn(i), block_segs(i as u8), BLOCK, false)
                .expect("fits");
        }
        let ledger = CopyLedger::new();
        b.iter_batched(
            || {
                let mut pkt = NetBuf::new(&ledger);
                for i in 0..8u64 {
                    let mut junk = vec![0u8; BLOCK];
                    KeyStamp::new().with_lbn(Lbn(i)).encode_into(&mut junk);
                    pkt.append_segment(Segment::from_vec(junk));
                }
                pkt
            },
            |mut pkt| substitute_payload(&mut pkt, &mut cache),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_checksum(c: &mut Criterion) {
    let mut g = c.benchmark_group("checksum");
    g.throughput(Throughput::Bytes(32 * 1024));
    g.bench_function("compute_32k", |b| {
        let ledger = CopyLedger::new();
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(Segment::from_vec(vec![0xA5; 32 << 10]));
        b.iter(|| pkt.compute_csum())
    });
    g.bench_function("inherit", |b| {
        let ledger = CopyLedger::new();
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(Segment::from_vec(vec![0xA5; 32 << 10]));
        b.iter(|| pkt.inherit_csum())
    });
    g.finish();
}

fn bench_module_hooks(c: &mut Criterion) {
    let mut g = c.benchmark_group("module_hooks");
    g.bench_function("on_data_in", |b| {
        let ledger = CopyLedger::new();
        b.iter_batched(
            || NcacheModule::new(NcacheConfig::with_capacity(1 << 30), &ledger),
            |mut m| {
                for i in 0..128u64 {
                    m.on_data_in(Lbn(i), block_segs(i as u8), BLOCK).expect("fits");
                }
                m
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cache_ops,
    bench_substitution,
    bench_checksum,
    bench_module_hooks
);
criterion_main!(benches);
