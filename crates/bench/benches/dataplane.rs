//! Host-performance micro-benchmarks of the core data-plane operations —
//! the operations whose counts drive the simulated CPU model. These time
//! the *library*, not the simulated hardware: a regression here means the
//! Rust implementation itself got slower. Timings land in
//! `BENCH_dataplane.json` for trajectory tracking.

use check::bench::Harness;
use ncache::cache::NetCache;
use ncache::shards::NetCacheShards;
use ncache::substitute::substitute_payload;
use ncache::{NcacheConfig, NcacheModule};
use netbuf::key::{Fho, FileHandle, KeyStamp, Lbn};
use netbuf::{BufPool, CopyLedger, NetBuf, Segment};

const BLOCK: usize = 4096;

fn block_segs(tag: u8) -> Vec<Segment> {
    vec![Segment::from_vec(vec![tag; BLOCK])]
}

fn bench_cache_ops(h: &mut Harness) {
    let mut g = h.group("netcache");
    // Payload fabrication (a 4 KiB alloc + memset per block) and LRU
    // eviction used to run *inside* the measured routine, burying the
    // insert itself: segments are now built in setup and the capacity
    // holds the whole batch, so the routine times exactly 256 inserts
    // of ready-made segments into an unpressured cache.
    g.bench_batched(
        "insert_lbn",
        || {
            let segs: Vec<(Lbn, Vec<Segment>)> = (0..256u64)
                .map(|i| (Lbn(i), block_segs(i as u8)))
                .collect();
            (NetCache::new(BufPool::new(1 << 30), 128), segs)
        },
        |(mut cache, segs)| {
            for (lbn, s) in segs {
                cache.insert_lbn(lbn, s, BLOCK, false).expect("fits");
            }
            cache
        },
    );
    {
        let mut cache = NetCache::new(BufPool::new(1 << 30), 128);
        for i in 0..1024u64 {
            cache
                .insert_lbn(Lbn(i), block_segs(i as u8), BLOCK, false)
                .expect("fits");
        }
        let mut i = 0u64;
        g.bench("lookup_hit", move || {
            i = (i + 1) % 1024;
            cache.lookup(Lbn(i).into()).is_some()
        });
    }
    // The decomposed read path under contention: N threads hammer
    // lookups on a warm sharded cache, each inside an epoch window —
    // exactly how the lane-parallel engine runs it (recency stamps come
    // from thread-local windows, not the shared clock, so a hit touches
    // only its shard's read lock and its entry's atomic). One routine
    // invocation is `threads x 4096` hits. On a multi-core host the
    // per-shard read locks let contended8 finish in far less than 4x
    // contended2's time; on a single-CPU host the threads time-slice
    // and the ratio approaches the 4x work ratio — the number tracked
    // here is the trajectory, not an absolute scaling claim.
    for threads in [2usize, 8] {
        let cache = NetCacheShards::new(BufPool::new(1 << 30), 128, 8);
        for i in 0..1024u64 {
            cache
                .insert_lbn(Lbn(i), block_segs(i as u8), BLOCK, false)
                .expect("fits");
        }
        g.bench(&format!("lookup_hit_contended{threads}"), move || {
            std::thread::scope(|s| {
                for t in 0..threads as u64 {
                    let cache = &cache;
                    s.spawn(move || {
                        let _w = ncache::epoch::enter_window(
                            ncache::epoch::stamp_base(1, t),
                        );
                        let mut hits = 0u64;
                        for k in 0..4096u64 {
                            let i = k.wrapping_mul(2654435761).wrapping_add(t * 7) % 1024;
                            hits += u64::from(cache.lookup(Lbn(i).into()).is_some());
                        }
                        hits
                    });
                }
            });
        });
    }
    g.bench_batched(
        "remap",
        || {
            let mut cache = NetCache::new(BufPool::new(1 << 30), 128);
            for i in 0..128u64 {
                cache
                    .insert_fho(Fho::new(FileHandle(1), i * BLOCK as u64), block_segs(1), BLOCK)
                    .expect("fits");
            }
            cache
        },
        |mut cache| {
            for i in 0..128u64 {
                cache.remap(Fho::new(FileHandle(1), i * BLOCK as u64), Lbn(i));
            }
            cache
        },
    );
}

fn bench_substitution(h: &mut Harness) {
    let mut g = h.group("substitution");
    g.throughput_bytes(8 * BLOCK as u64);
    let cache = NetCacheShards::new(BufPool::new(1 << 30), 128, 4);
    for i in 0..8u64 {
        cache
            .insert_lbn(Lbn(i), block_segs(i as u8), BLOCK, false)
            .expect("fits");
    }
    let ledger = CopyLedger::new();
    g.bench_batched(
        "substitute_8_blocks",
        || {
            let mut pkt = NetBuf::new(&ledger);
            for i in 0..8u64 {
                let mut junk = vec![0u8; BLOCK];
                KeyStamp::new().with_lbn(Lbn(i)).encode_into(&mut junk);
                pkt.append_segment(Segment::from_vec(junk));
            }
            pkt
        },
        |mut pkt| substitute_payload(&mut pkt, &cache),
    );
}

fn bench_checksum(h: &mut Harness) {
    let mut g = h.group("checksum");
    g.throughput_bytes(32 * 1024);
    {
        let ledger = CopyLedger::new();
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(Segment::from_vec(vec![0xA5; 32 << 10]));
        g.bench("compute_32k", move || pkt.compute_csum());
    }
    {
        // The vectorized one's-complement sum alone (u64 lanes, 4-way
        // unroll), without the NetBuf segment walk around it.
        let data = vec![0xA5u8; 32 << 10];
        g.bench("compute_32k_u64", move || proto::csum::sum_words(&data));
    }
    {
        let ledger = CopyLedger::new();
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(Segment::from_vec(vec![0xA5; 32 << 10]));
        g.bench("inherit", move || pkt.inherit_csum());
    }
}

fn bench_module_hooks(h: &mut Harness) {
    let mut g = h.group("module_hooks");
    let ledger = CopyLedger::new();
    g.bench_batched(
        "on_data_in",
        || NcacheModule::new(NcacheConfig::with_capacity(1 << 30), &ledger),
        |mut m| {
            for i in 0..128u64 {
                m.on_data_in(Lbn(i), block_segs(i as u8), BLOCK).expect("fits");
            }
            m
        },
    );
}

fn main() {
    let mut h = Harness::new("dataplane");
    bench_cache_ops(&mut h);
    bench_substitution(&mut h);
    bench_checksum(&mut h);
    bench_module_hooks(&mut h);
    h.finish();
}
