//! One Criterion bench per table and figure of the paper's evaluation.
//!
//! Each bench runs the corresponding experiment at a reduced scale and
//! reports its wall-clock; the printed SeriesTable rows themselves come
//! from the `repro` binary. Keeping the experiments inside `cargo bench`
//! means `cargo bench --workspace` regenerates every artifact of §5.

use criterion::{criterion_group, criterion_main, Criterion};
use testbed::experiments::{self, Scale};

fn bench_scale() -> Scale {
    Scale {
        allmiss_file: 4 << 20,
        allhit_file: 1 << 20,
        allhit_passes: 1,
        specweb_working_sets: vec![8 << 20, 16 << 20],
        web_cache_bytes: 12 << 20,
        specweb_requests: 150,
        specsfs_ops: 400,
        specsfs_files: 16,
        specsfs_file_size: 128 << 10,
    }
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table2_copy_counts", |b| {
        b.iter(|| {
            let rows = experiments::table2();
            assert_eq!(rows.len(), 6);
            rows
        })
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    let scale = bench_scale();
    g.bench_function("fig4_all_miss", |b| {
        b.iter(|| experiments::fig4(&scale))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    let scale = bench_scale();
    g.bench_function("fig5_all_hit", |b| {
        b.iter(|| experiments::fig5(&scale))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    let scale = bench_scale();
    g.bench_function("fig6a_specweb", |b| {
        b.iter(|| experiments::fig6a(&scale))
    });
    g.bench_function("fig6b_khttpd_sizes", |b| {
        b.iter(|| experiments::fig6b(&scale))
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    let scale = bench_scale();
    g.bench_function("fig7_specsfs", |b| {
        b.iter(|| experiments::fig7(&scale))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table2,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7
);
criterion_main!(benches);
