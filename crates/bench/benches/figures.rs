//! One bench per table and figure of the paper's evaluation.
//!
//! Each bench runs the corresponding experiment at a reduced scale and
//! reports its wall-clock; the printed SeriesTable rows themselves come
//! from the `repro` binary. Keeping the experiments inside `cargo bench`
//! means `cargo bench --workspace` regenerates every artifact of §5 and
//! leaves per-figure timings in `BENCH_figures.json`.

use check::bench::Harness;
use servers::ServerMode;
use testbed::executor;
use testbed::experiments::{self, Scale};
use testbed::nfs_rig::{NfsRig, NfsRigParams};
use testbed::runner::DriverOp;
use testbed::sessions::{run_nfs_sessions_parallel_timed, SessionsOptions};

fn bench_scale() -> Scale {
    Scale {
        allmiss_file: 4 << 20,
        allhit_file: 1 << 20,
        allhit_passes: 1,
        specweb_working_sets: vec![8 << 20, 16 << 20],
        web_cache_bytes: 12 << 20,
        specweb_requests: 150,
        specsfs_ops: 400,
        specsfs_files: 16,
        specsfs_file_size: 128 << 10,
        overload_requests: 192,
    }
}

fn main() {
    let scale = bench_scale();
    let threads = executor::thread_count(None);
    let mut h = Harness::new("figures");
    h.threads(threads);

    {
        let mut g = h.group("tables");
        g.sample_size(10);
        g.bench("table2_copy_counts", || {
            let rows = experiments::table2_with(None, threads);
            assert_eq!(rows.len(), 6);
            rows
        });
    }

    {
        let mut g = h.group("figures");
        g.sample_size(10);
        g.bench("fig4_all_miss", || experiments::fig4_with(&scale, None, threads));
        g.bench("fig5_all_hit", || experiments::fig5_with(&scale, None, threads));
        g.bench("fig6a_specweb", || experiments::fig6a_with(&scale, None, threads));
        g.bench("fig6b_khttpd_sizes", || experiments::fig6b_with(&scale, None, threads));
        g.bench("fig7_specsfs", || experiments::fig7_with(&scale, None, threads));
        g.bench("clients_sweep", || {
            experiments::clients_sweep_with(&scale, None, threads, 1)
        });
        g.bench("overload_sweep", || {
            experiments::overload_sweep_with(&scale, None, threads, 1)
        });
    }

    // The quantile engine itself: record a deterministic heavy-tailed
    // stream into the sub-bucketed histogram, merge a second recorder's
    // worth, and read a quantile ladder from the snapshot. This is the
    // hot path of every latency report, so ci.sh gates its median.
    {
        let mut g = h.group("obs");
        g.sample_size(20);
        g.bench("quantile_engine", || {
            let mut a = obs::Histogram::new();
            let mut b = obs::Histogram::new();
            let mut x = 0x9e3779b97f4a7c15u64;
            for i in 0..4096u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let v = (x % 1_000_000) << (i % 12);
                if i % 2 == 0 {
                    a.record(v);
                } else {
                    b.record(v);
                }
            }
            a.absorb(&b);
            let snap = a.snapshot();
            let mut acc = 0u64;
            for q in 1..=1000 {
                acc ^= snap.quantile(q as f64 / 1000.0);
            }
            acc
        });
    }

    // The client-scaling curve itself goes into the metrics block: one
    // monotone clients_sweep.clients.{n}.* entry per axis point, so each
    // BENCH_figures.json carries the throughput/hit-ratio curve.
    {
        let (thr, hits) = experiments::clients_sweep_with(&scale, None, threads, 1);
        for (i, x) in thr.xs().iter().enumerate() {
            let clients = *x as u64;
            h.metric(format!("clients_sweep.axis.{i}"), *x);
            for series in ["original", "ncache", "baseline"] {
                if let Some(v) = thr.get(*x, series) {
                    h.metric(
                        format!("clients_sweep.clients.{clients}.throughput_mbs.{series}"),
                        v,
                    );
                }
                if let Some(v) = hits.get(*x, series) {
                    h.metric(
                        format!("clients_sweep.clients.{clients}.hit_ratio.{series}"),
                        v,
                    );
                }
            }
        }
    }

    // The overload observatory's curves land in the JSON too: per
    // offered-load factor, delivered goodput and p50/p99/p999 per build,
    // plus the NCache build's per-stage latency shares.
    {
        let (goodput, tails, shares) =
            experiments::overload_sweep_with(&scale, None, threads, 1);
        let labelled = [
            ("overload.goodput_mbs", &goodput),
            ("overload.latency_us", &tails),
            ("overload.stage_share", &shares),
        ];
        for (prefix, table) in labelled {
            for x in table.xs() {
                for series in table.series() {
                    if let Some(v) = table.get(x, series) {
                        let s = series.replace(' ', "_");
                        h.metric(format!("{prefix}.{x}.{s}"), v);
                    }
                }
            }
        }
    }

    // The control-plane ablation's curves: delivered goodput and p99 per
    // variant and offered-load factor, plus the protected variant's shed
    // ratio (requests abandoned per request offered) — the cost side of
    // the goodput the gate preserves under overload.
    {
        let (goodput, tails, outcomes) =
            experiments::overload_ablation_with(&scale, None, threads, 1);
        for variant in ["unprotected", "protected"] {
            for x in goodput.xs() {
                if let Some(v) = goodput.get(x, variant) {
                    h.metric(format!("overload.{variant}.goodput_mbs.{x}"), v);
                }
                if let Some(v) = tails.get(x, &format!("{variant} p99")) {
                    h.metric(format!("overload.{variant}.p99_us.{x}"), v);
                }
            }
        }
        let offered = (outcomes.xs().len() * scale.overload_requests) as f64;
        let shed: f64 = outcomes
            .xs()
            .iter()
            .filter_map(|&x| outcomes.get(x, "protected shed"))
            .sum();
        h.metric("control.shed_ratio", shed / offered.max(1.0));
    }

    // The adaptive-split ablation's curves: per phase segment, delivered
    // goodput and NCache hit ratio for the frozen ("static") and live
    // ("dynamic") controller, plus fast-tier residency — how much work
    // the backend tier is left holding under each split.
    {
        let (goodput, hits, residency) =
            experiments::adaptive_ablation_with(&scale, None, threads, 1);
        for (series, label) in [("static", "static"), ("adaptive", "dynamic")] {
            for x in goodput.xs() {
                if let Some(v) = goodput.get(x, series) {
                    h.metric(format!("adaptive.{label}.goodput_mbs.{x}"), v);
                }
                if let Some(v) = hits.get(x, series) {
                    h.metric(format!("adaptive.{label}.hit_ratio.{x}"), v);
                }
                if let Some(v) = residency.get(x, series) {
                    h.metric(format!("tier.fast_residency.{label}.{x}"), v);
                }
            }
        }
    }

    // Functional-phase wall clock of the lane-parallel engine on a
    // read-heavy warm workload, at 1 / 2 / max host threads, and the
    // derived speedup. The timed entry point measures only the phase
    // that actually runs on host threads (the timing replay is serial
    // by design). On a single-CPU host the speedup sits near 1.0 —
    // the metric records what the host delivered, it does not fake a
    // multi-core result.
    {
        const FILE: u64 = 4 << 20;
        const SPAN: u32 = 16 << 10;
        let build = || {
            let mut rig = NfsRig::new(
                ServerMode::NCache,
                NfsRigParams {
                    shards: 8,
                    ..NfsRigParams::default()
                },
            );
            let fh = rig.create_file("speedup", FILE);
            let mut off = 0u64;
            while off < FILE {
                rig.read(fh, off as u32, 64 << 10);
                off += 64 << 10;
            }
            (rig, fh)
        };
        let sessions_for = |fh: u64| -> Vec<Vec<DriverOp>> {
            (0..64u64)
                .map(|sid| {
                    (0..16u64)
                        .map(|k| DriverOp::Read {
                            fh,
                            offset: (((sid * 31 + k * 7) % (FILE / u64::from(SPAN)))
                                * u64::from(SPAN)) as u32,
                            len: SPAN,
                        })
                        .collect()
                })
                .collect()
        };
        let mut wall_ms = Vec::new();
        let mut counts: Vec<usize> = vec![1, 2, threads];
        counts.sort_unstable();
        counts.dedup();
        for &t in &counts {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let (rig, fh) = build();
                let (_, _, wall) = run_nfs_sessions_parallel_timed(
                    rig,
                    sessions_for(fh),
                    &SessionsOptions::default(),
                    t,
                    0xBEEF,
                );
                best = best.min(wall.as_secs_f64() * 1e3);
            }
            h.metric(format!("sessions.parallel_wall_ms.t{t}"), best);
            wall_ms.push(best);
        }
        let t1 = wall_ms[0];
        let tmax = *wall_ms.last().expect("at least one thread count");
        h.metric("sessions.parallel_speedup", t1 / tmax);
    }

    // Embed one traced Table 2 pass's counters as the run's metrics
    // snapshot, so each BENCH_figures.json carries the workload shape
    // (copies, cache activity, substitutions) next to the timings.
    let rec = obs::Recorder::new();
    rec.enable(obs::TraceConfig::default());
    experiments::table2_traced(&rec);
    for (name, value) in rec.counters() {
        h.metric(format!("table2.{name}"), value as f64);
    }

    h.finish();
}
