//! Benchmark harness for the NCache reproduction.
//!
//! Two entry points:
//!
//! * the **`repro` binary** (`cargo run --release -p ncache-bench --bin
//!   repro`) regenerates every table and figure of the paper's evaluation
//!   and prints them in the paper's layout — see `repro --help`;
//! * the **Criterion benches** (`cargo bench -p ncache-bench`) time the
//!   core data-plane operations (substitution, cache management, checksum
//!   inheritance) and one scaled-down run per figure, so regressions in
//!   either the library's host performance or the modelled shapes show up
//!   in CI.

use testbed::experiments::Scale;

/// Parses the scale argument shared by the binary and the benches.
pub fn scale_from_arg(arg: Option<&str>) -> Scale {
    match arg {
        Some("--paper") => Scale::paper(),
        _ => Scale::quick(),
    }
}

/// The gain of `b` over `a`, as the paper reports it (per cent).
pub fn gain_pct(a: f64, b: f64) -> f64 {
    (b / a - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(scale_from_arg(None).allmiss_file, Scale::quick().allmiss_file);
        assert_eq!(
            scale_from_arg(Some("--paper")).allmiss_file,
            Scale::paper().allmiss_file
        );
        assert_eq!(
            scale_from_arg(Some("--fig4")).allmiss_file,
            Scale::quick().allmiss_file
        );
    }

    #[test]
    fn gain_math() {
        assert!((gain_pct(100.0, 192.0) - 92.0).abs() < 1e-9);
        assert!((gain_pct(50.0, 50.0)).abs() < 1e-9);
    }
}
