//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro                 # all experiments, quick scale
//! repro --paper         # all experiments at the paper's sizes (slow)
//! repro --table1        # just Table 1
//! repro --table2        # just Table 2
//! repro --fig4 ... --fig7
//! ```
//!
//! Selectors combine with `--paper`.

use std::time::Instant;

use ncache_bench::scale_from_arg;
use testbed::ablations;
use testbed::experiments::{self, render_table2};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "repro — regenerate the evaluation of 'Network-Centric Buffer \
             Cache Organization' (ICDCS 2005)\n\n\
             usage: repro [--paper] [--table1] [--table2] [--fig4] [--fig5] \
             [--fig6a] [--fig6b] [--fig7] [--ablations]\n\n\
             With no selector, every experiment runs. --paper uses the \
             paper's workload sizes (2 GB all-miss file, 250 MB-1 GB \
             working sets) and takes much longer."
        );
        return;
    }
    let scale = scale_from_arg(args.iter().map(String::as_str).find(|a| *a == "--paper"));
    let selected = |name: &str| {
        let selectors: Vec<&String> = args.iter().filter(|a| *a != "--paper").collect();
        selectors.is_empty() || selectors.iter().any(|a| *a == &format!("--{name}"))
    };

    if selected("table1") {
        println!("{}", experiments::table1());
    }
    if selected("table2") {
        let t0 = Instant::now();
        println!("{}", render_table2(&experiments::table2()));
        eprintln!("[table2 in {:.1?}]\n", t0.elapsed());
    }
    if selected("fig4") {
        let t0 = Instant::now();
        let (thr, cpu) = experiments::fig4(&scale);
        println!("{thr}\n{cpu}");
        eprintln!("[fig4 in {:.1?}]\n", t0.elapsed());
    }
    if selected("fig5") {
        let t0 = Instant::now();
        let (cpu1, thr2) = experiments::fig5(&scale);
        println!("{cpu1}\n{thr2}");
        eprintln!("[fig5 in {:.1?}]\n", t0.elapsed());
    }
    if selected("fig6a") {
        let t0 = Instant::now();
        println!("{}", experiments::fig6a(&scale));
        eprintln!("[fig6a in {:.1?}]\n", t0.elapsed());
    }
    if selected("fig6b") {
        let t0 = Instant::now();
        println!("{}", experiments::fig6b(&scale));
        eprintln!("[fig6b in {:.1?}]\n", t0.elapsed());
    }
    if selected("fig7") {
        let t0 = Instant::now();
        println!("{}", experiments::fig7(&scale));
        eprintln!("[fig7 in {:.1?}]\n", t0.elapsed());
    }
    if selected("ablations") {
        let t0 = Instant::now();
        let mech = ablations::ablation_mechanisms(scale.allhit_file);
        println!("{mech}");
        for (i, name) in ablations::MECHANISM_VARIANTS.iter().enumerate() {
            println!("  variant {i} = {name}");
        }
        println!();
        println!(
            "{}",
            ablations::ablation_fs_cache_share(
                scale.web_cache_bytes,
                scale.web_cache_bytes,
                scale.specweb_requests / 2,
            )
        );
        let (fresh, stale) = ablations::ablation_lookup_order(32);
        println!(
            "# Ablation: resolution order (32 read-write-read blocks)\n\
             FHO-first (paper): {fresh} stale reads\n\
             LBN-first (flipped): {stale} stale reads\n"
        );
        eprintln!("[ablations in {:.1?}]\n", t0.elapsed());
    }
}
