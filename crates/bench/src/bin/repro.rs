//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro                       # all experiments, quick scale
//! repro --paper               # all experiments at the paper's sizes (slow)
//! repro --table1              # just Table 1
//! repro --table2              # just Table 2
//! repro --fig4 ... --fig7
//! repro --fig4 --trace t.json # also write a Chrome trace (+ .jsonl sibling)
//! repro --table2 --metrics    # also print the unified metrics summary
//! repro --table2 --faults loss=0.05 --seed 7   # Table 2 under fault injection
//! repro --faults-sweep                         # completion/recovery vs loss rate
//! repro --clients-sweep --shards 8 --threads 4 # client scaling, sharded cache
//! repro --overload-sweep --latency-report      # open-loop tails + attribution
//! repro --validate-trace t.json
//! ```
//!
//! Selectors combine with `--paper`, `--trace`, `--metrics` and `--faults`.

use std::process::ExitCode;
use std::time::Instant;

use ncache_bench::scale_from_arg;
use testbed::ablations;
use testbed::executor;
use testbed::experiments::{self, render_table2};

fn validate(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if path.ends_with(".jsonl") {
        obs::validate_jsonl(&text)
    } else {
        obs::validate_chrome_trace(&text)
    };
    match result {
        Ok(n) => {
            println!("{path}: valid ({n} events)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn write_trace(rec: &obs::Recorder, path: &str) {
    let events = rec.events();
    if rec.dropped() > 0 {
        eprintln!(
            "[trace: ring buffer dropped {} events — raise TraceConfig::capacity]",
            rec.dropped()
        );
    }
    let chrome = obs::export_chrome_trace(&events);
    std::fs::write(path, chrome).expect("write trace file");
    let jsonl_path = std::path::Path::new(path).with_extension("jsonl");
    std::fs::write(&jsonl_path, obs::export_jsonl(&events)).expect("write jsonl file");
    eprintln!(
        "[trace: {} events -> {path} + {}]",
        events.len(),
        jsonl_path.display()
    );
}

fn print_latency_report(rec: &obs::Recorder) {
    let mut report = obs::MetricsReport::new();
    report.add_latency(&rec.histograms());
    println!("# Latency attribution report\n{}", report.render());
}

fn print_metrics(rec: &obs::Recorder) {
    let mut report = obs::MetricsReport::new();
    report.add_counters("recorder counters", &rec.counters());
    let mut hist_entries = Vec::new();
    for (name, h) in rec.histograms() {
        hist_entries.push((format!("{name}.count"), h.count.to_string()));
        hist_entries.push((format!("{name}.mean"), format!("{:.0}", h.mean())));
        hist_entries.push((format!("{name}.max"), h.max.to_string()));
    }
    if !hist_entries.is_empty() {
        report.add_section("histograms", hist_entries);
    }
    println!("# Unified metrics summary\n{}", report.render());
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "repro — regenerate the evaluation of 'Network-Centric Buffer \
             Cache Organization' (ICDCS 2005)\n\n\
             usage: repro [--paper] [--table1] [--table2] [--fig4] [--fig5] \
             [--fig6a] [--fig6b] [--fig7] [--ablations] [--faults-sweep] \
             [--clients-sweep] [--overload-sweep] [--adaptive-sweep]\n       \
             [--threads N] [--shards N] [--parallel-lanes] [--lane-oracle] \
             [--trace FILE] [--metrics] [--latency-report] \
             [--faults SPEC] [--seed N] [--validate-trace FILE]\n\n\
             With no selector, every experiment runs. --paper uses the \
             paper's workload sizes (2 GB all-miss file, 250 MB-1 GB \
             working sets) and takes much longer.\n\n\
             --threads N    run experiment cells on N worker threads\n\
             \x20              (default: NCACHE_THREADS, then the machine's\n\
             \x20              available parallelism); output is identical at\n\
             \x20              every thread count\n\
             --shards N     NCache shard count for --clients-sweep and\n\
             \x20              --overload-sweep\n\
             \x20              (default 1); sharding only partitions the key\n\
             \x20              space, so output is identical at every shard\n\
             \x20              count\n\
             --parallel-lanes\n\
             \x20              run --clients-sweep on the lane-parallel\n\
             \x20              engine: each cell's sessions execute\n\
             \x20              concurrently on --threads host threads over a\n\
             \x20              warmed hot set; output is byte-identical at\n\
             \x20              every thread count and to --lane-oracle;\n\
             \x20              combines with --faults (the reference is then\n\
             \x20              the --threads 1 run: faulted draws are\n\
             \x20              per-lane, not sequential)\n\
             --lane-oracle  run the --parallel-lanes workload through the\n\
             \x20              sequential engine instead — the byte-exact\n\
             \x20              reference the CI gate diffs against\n\
             --trace FILE   write a Chrome trace (chrome://tracing, Perfetto)\n\
             \x20              of the selected experiments to FILE, plus a\n\
             \x20              line-delimited JSON event stream to FILE with a\n\
             \x20              .jsonl extension\n\
             --overload-sweep\n\
             \x20              probe each build's closed-loop capacity, then\n\
             \x20              offer seeded open-loop Poisson+Zipf load at\n\
             \x20              0.5-2.0x of it; prints delivered goodput,\n\
             \x20              p50/p99/p999 tails and the NCache build's\n\
             \x20              per-stage latency shares; byte-identical at\n\
             \x20              every --threads and --shards value\n\
             --protected    with --overload-sweep: run the overload control\n\
             \x20              ablation instead — the NCache build under a\n\
             \x20              mixed read/write open loop with per-request\n\
             \x20              deadlines, once with the control plane off and\n\
             \x20              once with admission control, backpressure and\n\
             \x20              client retry budgets on; prints on-time\n\
             \x20              goodput, tails and request outcomes\n\
             --adaptive-sweep\n\
             \x20              run the static-vs-adaptive cache-split ablation:\n\
             \x20              the NCache build under a phase-changing Zipf\n\
             \x20              workload on a tiered (NVMe-front) backend, once\n\
             \x20              with the split controller frozen and once live;\n\
             \x20              prints per-segment goodput, NCache hit ratio and\n\
             \x20              fast-tier residency; byte-identical at every\n\
             \x20              --threads and --shards value\n\
             --metrics      print the unified metrics summary after the run\n\
             --latency-report\n\
             \x20              print the latency attribution report after the\n\
             \x20              run: per-path tail quantiles plus each pipeline\n\
             \x20              stage's queue/service sums and share of\n\
             \x20              end-to-end latency, with the bottleneck named\n\
             --faults SPEC  run --table2 under deterministic fault injection\n\
             \x20              and enable the --faults-sweep selector; SPEC is\n\
             \x20              comma-separated key=rate pairs (loss, duplicate,\n\
             \x20              reorder, delay, truncate, corrupt, io), e.g.\n\
             \x20              loss=0.05 or loss=0.02,delay=0.01\n\
             --seed N       root seed for fault schedules (default 7); the\n\
             \x20              same seed + spec replays byte-identically at\n\
             \x20              any thread count\n\
             --validate-trace FILE\n\
             \x20              schema-check a trace written by --trace and exit"
        );
        return ExitCode::SUCCESS;
    }

    let mut paper = false;
    let mut metrics = false;
    let mut latency_report = false;
    let mut parallel_lanes = false;
    let mut lane_oracle = false;
    let mut protected = false;
    let mut threads_arg: Option<usize> = None;
    let mut shards: usize = 1;
    let mut trace_path: Option<String> = None;
    let mut fault_spec: Option<sim::FaultSpec> = None;
    let mut fault_seed: u64 = 7;
    let mut selectors: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--paper" => paper = true,
            "--metrics" => metrics = true,
            "--latency-report" => latency_report = true,
            "--parallel-lanes" => parallel_lanes = true,
            "--lane-oracle" => lane_oracle = true,
            "--protected" => protected = true,
            "--faults" => match it.next().map(|v| sim::FaultSpec::parse(v)) {
                Some(Ok(spec)) => fault_spec = Some(spec),
                Some(Err(e)) => {
                    eprintln!("error: --faults: {e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("error: --faults needs a spec argument (e.g. loss=0.05)");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => fault_seed = n,
                None => {
                    eprintln!("error: --seed needs a numeric argument");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => threads_arg = Some(n),
                None => {
                    eprintln!("error: --threads needs a numeric argument");
                    return ExitCode::FAILURE;
                }
            },
            "--shards" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => shards = n,
                _ => {
                    eprintln!("error: --shards needs a positive numeric argument");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match it.next() {
                Some(p) => trace_path = Some(p.clone()),
                None => {
                    eprintln!("error: --trace needs a file argument");
                    return ExitCode::FAILURE;
                }
            },
            "--validate-trace" => {
                return match it.next() {
                    Some(p) => validate(p),
                    None => {
                        eprintln!("error: --validate-trace needs a file argument");
                        ExitCode::FAILURE
                    }
                };
            }
            other => selectors.push(other.trim_start_matches("--").to_string()),
        }
    }
    let scale = scale_from_arg(paper.then_some("--paper"));
    let threads = executor::thread_count(threads_arg);
    let selected = |name: &str| selectors.is_empty() || selectors.iter().any(|a| a == name);

    let rec = obs::Recorder::new();
    if trace_path.is_some() || metrics || latency_report {
        rec.enable(obs::TraceConfig::default());
    }
    let traced = rec.is_enabled();

    if selected("table1") {
        println!("{}", experiments::table1());
    }
    if selected("table2") {
        let t0 = Instant::now();
        let rows = match &fault_spec {
            Some(spec) => {
                eprintln!("[table2 under faults: {spec:?}, seed {fault_seed}]");
                experiments::table2_faulted(spec, fault_seed, traced.then_some(&rec), threads)
            }
            None => experiments::table2_with(traced.then_some(&rec), threads),
        };
        println!("{}", render_table2(&rows));
        eprintln!("[table2 in {:.1?}]\n", t0.elapsed());
    }
    if selectors.iter().any(|a| a == "faults-sweep") {
        let t0 = Instant::now();
        let spec = fault_spec.unwrap_or_default();
        let (done, recov) =
            experiments::fault_sweep_with(&spec, fault_seed, traced.then_some(&rec), threads);
        println!("{done}\n{recov}");
        eprintln!("[faults-sweep in {:.1?}]\n", t0.elapsed());
    }
    if selectors.iter().any(|a| a == "clients-sweep") {
        let t0 = Instant::now();
        let (thr, hits) = if parallel_lanes || lane_oracle {
            let lanes = (!lane_oracle).then_some(threads);
            let faults = fault_spec.as_ref().map(|s| (s, fault_seed));
            experiments::clients_sweep_lanes(&scale, shards, lanes, faults)
        } else {
            experiments::clients_sweep_with(&scale, traced.then_some(&rec), threads, shards)
        };
        println!("{thr}\n{hits}");
        eprintln!("[clients-sweep in {:.1?}]\n", t0.elapsed());
    }
    if selectors.iter().any(|a| a == "overload-sweep") {
        let t0 = Instant::now();
        if protected {
            let (goodput, tails, outcomes) =
                experiments::overload_ablation_with(&scale, traced.then_some(&rec), threads, shards);
            println!("{goodput}\n{tails}\n{outcomes}");
            eprintln!("[overload-ablation in {:.1?}]\n", t0.elapsed());
        } else {
            let (goodput, tails, shares) =
                experiments::overload_sweep_with(&scale, traced.then_some(&rec), threads, shards);
            println!("{goodput}\n{tails}\n{shares}");
            eprintln!("[overload-sweep in {:.1?}]\n", t0.elapsed());
        }
    }
    if selectors.iter().any(|a| a == "adaptive-sweep") {
        let t0 = Instant::now();
        let (goodput, hits, residency) =
            experiments::adaptive_ablation_with(&scale, traced.then_some(&rec), threads, shards);
        println!("{goodput}\n{hits}\n{residency}");
        eprintln!("[adaptive-sweep in {:.1?}]\n", t0.elapsed());
    }
    if selected("fig4") {
        let t0 = Instant::now();
        let (thr, cpu) = experiments::fig4_with(&scale, traced.then_some(&rec), threads);
        println!("{thr}\n{cpu}");
        eprintln!("[fig4 in {:.1?}]\n", t0.elapsed());
    }
    if selected("fig5") {
        let t0 = Instant::now();
        let (cpu1, thr2) = experiments::fig5_with(&scale, traced.then_some(&rec), threads);
        println!("{cpu1}\n{thr2}");
        eprintln!("[fig5 in {:.1?}]\n", t0.elapsed());
    }
    if selected("fig6a") {
        let t0 = Instant::now();
        let thr = experiments::fig6a_with(&scale, traced.then_some(&rec), threads);
        println!("{thr}");
        eprintln!("[fig6a in {:.1?}]\n", t0.elapsed());
    }
    if selected("fig6b") {
        let t0 = Instant::now();
        let thr = experiments::fig6b_with(&scale, traced.then_some(&rec), threads);
        println!("{thr}");
        eprintln!("[fig6b in {:.1?}]\n", t0.elapsed());
    }
    if selected("fig7") {
        let t0 = Instant::now();
        let table = experiments::fig7_with(&scale, traced.then_some(&rec), threads);
        println!("{table}");
        eprintln!("[fig7 in {:.1?}]\n", t0.elapsed());
    }
    if selected("ablations") {
        let t0 = Instant::now();
        let mech = ablations::ablation_mechanisms(scale.allhit_file);
        println!("{mech}");
        for (i, name) in ablations::MECHANISM_VARIANTS.iter().enumerate() {
            println!("  variant {i} = {name}");
        }
        println!();
        println!(
            "{}",
            ablations::ablation_fs_cache_share(
                scale.web_cache_bytes,
                scale.web_cache_bytes,
                scale.specweb_requests / 2,
            )
        );
        let (fresh, stale) = ablations::ablation_lookup_order(32);
        println!(
            "# Ablation: resolution order (32 read-write-read blocks)\n\
             FHO-first (paper): {fresh} stale reads\n\
             LBN-first (flipped): {stale} stale reads\n"
        );
        eprintln!("[ablations in {:.1?}]\n", t0.elapsed());
    }

    if metrics {
        print_metrics(&rec);
    }
    if latency_report {
        print_latency_report(&rec);
    }
    if let Some(path) = &trace_path {
        write_trace(&rec, path);
    }
    ExitCode::SUCCESS
}
