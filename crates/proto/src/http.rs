//! HTTP/1.0 subset for the kHTTPd experiments.
//!
//! kHTTPd serves only static pages; NCache tracks its outgoing TCP streams
//! and splits each response at the `\r\n\r\n` header/body boundary: header
//! packets pass through untouched, body packets are substituted from the
//! cache (paper §3.5, §4.3).

use crate::error::{DecodeError, Result};

/// A parsed HTTP/1.0 GET request.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct HttpRequest {
    /// Request path (e.g. `/dir0/file3.html`).
    pub path: String,
}

impl HttpRequest {
    /// Builds the wire form of a GET for `path`.
    pub fn encode(&self) -> Vec<u8> {
        format!("GET {} HTTP/1.0\r\nHost: testbed\r\n\r\n", self.path).into_bytes()
    }

    /// Parses a request from `buf`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] when the blank line has not arrived yet,
    /// [`DecodeError::BadField`] on a malformed request line,
    /// [`DecodeError::Unsupported`] on non-GET methods.
    pub fn decode(buf: &[u8]) -> Result<HttpRequest> {
        let end = find_header_end(buf).ok_or(DecodeError::Truncated {
            need: buf.len() + 1,
            have: buf.len(),
        })?;
        let head = std::str::from_utf8(&buf[..end]).map_err(|_| DecodeError::BadField("utf-8"))?;
        let line = head.lines().next().ok_or(DecodeError::BadField("request line"))?;
        let mut parts = line.split_whitespace();
        let method = parts.next().ok_or(DecodeError::BadField("method"))?;
        if method != "GET" {
            return Err(DecodeError::Unsupported("non-GET method"));
        }
        let path = parts.next().ok_or(DecodeError::BadField("path"))?;
        let version = parts.next().ok_or(DecodeError::BadField("version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(DecodeError::BadField("version"));
        }
        Ok(HttpRequest {
            path: path.to_string(),
        })
    }
}

/// A parsed (or to-be-built) HTTP/1.0 response header.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct HttpResponseHeader {
    /// Status code (200, 404, 503, ...).
    pub status: u16,
    /// Declared body length in bytes.
    pub content_length: u64,
    /// `Retry-After` hint in seconds; emitted only when non-zero. The
    /// overload control plane's 503 rejections carry this so clients
    /// back off instead of hammering a shedding server.
    pub retry_after_s: u32,
}

impl HttpResponseHeader {
    /// A 200 OK header for a `content_length`-byte body.
    pub fn ok(content_length: u64) -> Self {
        HttpResponseHeader {
            status: 200,
            content_length,
            retry_after_s: 0,
        }
    }

    /// A 404 header.
    pub fn not_found() -> Self {
        HttpResponseHeader {
            status: 404,
            content_length: 0,
            retry_after_s: 0,
        }
    }

    /// A 503 Service Unavailable header with a `Retry-After` hint —
    /// the kHTTPd analog of the NFS `RETRY_LATER` rejection.
    pub fn service_unavailable(retry_after_s: u32) -> Self {
        HttpResponseHeader {
            status: 503,
            content_length: 0,
            retry_after_s,
        }
    }

    /// Builds the header bytes, ending in the `\r\n\r\n` boundary.
    pub fn encode(&self) -> Vec<u8> {
        let reason = match self.status {
            200 => "OK",
            404 => "Not Found",
            503 => "Service Unavailable",
            _ => "Unknown",
        };
        let retry_after = if self.retry_after_s > 0 {
            format!("Retry-After: {}\r\n", self.retry_after_s)
        } else {
            String::new()
        };
        format!(
            "HTTP/1.0 {} {}\r\nServer: khttpd\r\n{}Content-Length: {}\r\n\r\n",
            self.status, reason, retry_after, self.content_length
        )
        .into_bytes()
    }

    /// Parses the response header at the start of a stream, returning the
    /// header and the offset where the body begins.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] when the boundary has not arrived,
    /// [`DecodeError::BadField`] on malformed status line or missing
    /// `Content-Length`.
    pub fn decode(buf: &[u8]) -> Result<(HttpResponseHeader, usize)> {
        let end = find_header_end(buf).ok_or(DecodeError::Truncated {
            need: buf.len() + 1,
            have: buf.len(),
        })?;
        let head = std::str::from_utf8(&buf[..end]).map_err(|_| DecodeError::BadField("utf-8"))?;
        let mut lines = head.lines();
        let status_line = lines.next().ok_or(DecodeError::BadField("status line"))?;
        let mut parts = status_line.split_whitespace();
        let version = parts.next().ok_or(DecodeError::BadField("version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(DecodeError::BadField("version"));
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(DecodeError::BadField("status code"))?;
        let mut content_length = None;
        let mut retry_after_s = 0;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse::<u64>().ok();
                } else if name.eq_ignore_ascii_case("retry-after") {
                    retry_after_s = value.trim().parse::<u32>().unwrap_or(0);
                }
            }
        }
        let content_length = content_length.ok_or(DecodeError::BadField("content-length"))?;
        Ok((
            HttpResponseHeader {
                status,
                content_length,
                retry_after_s,
            },
            end,
        ))
    }
}

/// Finds the index just past the `\r\n\r\n` header/body boundary — the
/// pattern the NCache HTTP tracker scans for (paper §3.5).
pub fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::gen::*;
    use check::{prop_assert, prop_assert_eq, property};

    #[test]
    fn request_round_trip() {
        let r = HttpRequest {
            path: "/specweb/dir04/class2_7".to_string(),
        };
        assert_eq!(HttpRequest::decode(&r.encode()), Ok(r));
    }

    #[test]
    fn request_incomplete_is_truncated() {
        assert!(matches!(
            HttpRequest::decode(b"GET /x HTTP/1.0\r\nHost:"),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn request_rejects_non_get() {
        let buf = b"POST /x HTTP/1.0\r\n\r\n";
        assert_eq!(
            HttpRequest::decode(buf),
            Err(DecodeError::Unsupported("non-GET method"))
        );
    }

    #[test]
    fn request_rejects_malformed() {
        assert!(HttpRequest::decode(b"GARBAGE\r\n\r\n").is_err());
        assert!(HttpRequest::decode(b"GET /x SPDY/9\r\n\r\n").is_err());
        assert!(HttpRequest::decode(b"GET\r\n\r\n").is_err());
    }

    #[test]
    fn response_round_trip() {
        let h = HttpResponseHeader::ok(75_000);
        let enc = h.encode();
        let (parsed, body_at) = HttpResponseHeader::decode(&enc).expect("valid");
        assert_eq!(parsed, h);
        assert_eq!(body_at, enc.len());
        assert!(enc.ends_with(b"\r\n\r\n"));
    }

    #[test]
    fn response_body_offset_points_at_body() {
        let h = HttpResponseHeader::ok(3);
        let mut stream = h.encode();
        stream.extend_from_slice(b"abc");
        let (parsed, body_at) = HttpResponseHeader::decode(&stream).expect("valid");
        assert_eq!(&stream[body_at..], b"abc");
        assert_eq!(parsed.content_length, 3);
    }

    #[test]
    fn response_404() {
        let h = HttpResponseHeader::not_found();
        let (parsed, _) = HttpResponseHeader::decode(&h.encode()).expect("valid");
        assert_eq!(parsed.status, 404);
        assert_eq!(parsed.content_length, 0);
    }

    #[test]
    fn response_503_round_trips_retry_after() {
        let h = HttpResponseHeader::service_unavailable(2);
        let enc = h.encode();
        let text = std::str::from_utf8(&enc).expect("ascii header");
        assert!(text.contains("503 Service Unavailable"));
        assert!(text.contains("Retry-After: 2\r\n"));
        let (parsed, body_at) = HttpResponseHeader::decode(&enc).expect("valid");
        assert_eq!(parsed, h);
        assert_eq!(body_at, enc.len());
        // A zero hint is simply omitted from the wire form.
        let quiet = HttpResponseHeader::ok(9).encode();
        assert!(!std::str::from_utf8(&quiet).unwrap().contains("Retry-After"));
    }

    #[test]
    fn response_missing_content_length_rejected() {
        let buf = b"HTTP/1.0 200 OK\r\nServer: x\r\n\r\n";
        assert_eq!(
            HttpResponseHeader::decode(buf),
            Err(DecodeError::BadField("content-length"))
        );
    }

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"ab\r\n\r\ncd"), Some(6));
        assert_eq!(find_header_end(b"ab\r\ncd"), None);
        assert_eq!(find_header_end(b""), None);
        assert_eq!(find_header_end(b"\r\n\r\n"), Some(4));
    }

    property! {
        fn prop_request_round_trip(
            path in string_of(URL_PATH, 0..61).map(|tail| format!("/{tail}")),
        ) {
            let r = HttpRequest { path };
            prop_assert_eq!(HttpRequest::decode(&r.encode()), Ok(r.clone()));
        }

        fn prop_response_round_trip(len in any_u64()) {
            let h = HttpResponseHeader::ok(len);
            let (parsed, _) = HttpResponseHeader::decode(&h.encode()).unwrap();
            prop_assert_eq!(parsed, h);
        }

        fn prop_header_end_never_past_buffer(data in bytes(0..256)) {
            if let Some(end) = find_header_end(&data) {
                prop_assert!(end <= data.len());
                prop_assert_eq!(&data[end - 4..end], b"\r\n\r\n");
            }
        }
    }
}
