//! UDP headers. NFS traffic runs over UDP in the paper's experiments
//! (§5.5: "NFS runs on UDP in our experiments").

use crate::error::{need, Result};

/// Length of a UDP header.
pub const HEADER_LEN: usize = 8;
/// The well-known NFS port.
pub const NFS_PORT: u16 = 2049;

/// A UDP header. The checksum field is carried but, matching the testbed
/// (checksum offload enabled on the Intel NICs), treated as
/// hardware-validated; `0` means "not computed".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header plus payload.
    pub length: u16,
    /// Transport checksum (0 when offloaded / not computed).
    pub checksum: u16,
}

impl UdpHeader {
    /// A header for `payload_len` bytes of payload.
    ///
    /// # Panics
    ///
    /// Panics if the datagram would exceed 65535 bytes.
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> Self {
        let length = HEADER_LEN + payload_len;
        assert!(length <= usize::from(u16::MAX), "UDP datagram too large");
        UdpHeader {
            src_port,
            dst_port,
            length: length as u16,
            checksum: 0,
        }
    }

    /// Payload bytes carried.
    pub fn payload_len(&self) -> usize {
        usize::from(self.length).saturating_sub(HEADER_LEN)
    }

    /// Encodes to the 8-byte wire form.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut b = [0u8; HEADER_LEN];
        b[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        b[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        b[4..6].copy_from_slice(&self.length.to_be_bytes());
        b[6..8].copy_from_slice(&self.checksum.to_be_bytes());
        b
    }

    /// Decodes from the head of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DecodeError::Truncated`] on short input.
    pub fn decode(buf: &[u8]) -> Result<UdpHeader> {
        need(buf, HEADER_LEN)?;
        Ok(UdpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            length: u16::from_be_bytes([buf[4], buf[5]]),
            checksum: u16::from_be_bytes([buf[6], buf[7]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DecodeError;
    use check::gen::*;
    use check::{prop_assert_eq, property};

    #[test]
    fn round_trip() {
        let h = UdpHeader::new(3000, NFS_PORT, 512);
        assert_eq!(UdpHeader::decode(&h.encode()), Ok(h));
        assert_eq!(h.payload_len(), 512);
        assert_eq!(h.length, 520);
    }

    #[test]
    fn truncated() {
        assert_eq!(
            UdpHeader::decode(&[0; 7]),
            Err(DecodeError::Truncated { need: 8, have: 7 })
        );
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_panics() {
        let _ = UdpHeader::new(1, 2, 66_000);
    }

    property! {
        fn prop_round_trip(sp in any_u16(), dp in any_u16(), plen in ints(0usize..65_000)) {
            let h = UdpHeader::new(sp, dp, plen);
            prop_assert_eq!(UdpHeader::decode(&h.encode()), Ok(h));
        }
    }
}
