//! IPv4 headers (no options), with header checksum.

use crate::csum;
use crate::error::{need, DecodeError, Result};

/// Length of an option-less IPv4 header.
pub const HEADER_LEN: usize = 20;
/// Protocol number for UDP.
pub const PROTO_UDP: u8 = 17;
/// Protocol number for TCP.
pub const PROTO_TCP: u8 = 6;

/// An IPv4 address.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// A 10.0.0.x testbed address from a small node id.
    pub fn from_node_id(id: u8) -> Self {
        Ipv4Addr([10, 0, 0, id])
    }
}

impl std::fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let a = self.0;
        write!(f, "{}.{}.{}.{}", a[0], a[1], a[2], a[3])
    }
}

/// An option-less IPv4 header.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Carried protocol ([`PROTO_UDP`] or [`PROTO_TCP`]).
    pub protocol: u8,
    /// Total datagram length including this header.
    pub total_len: u16,
    /// Identification field (used for diagnostics only; the simulated
    /// network never fragments).
    pub ident: u16,
    /// Time to live.
    pub ttl: u8,
}

impl Ipv4Header {
    /// A header for `payload_len` bytes of L4 payload.
    ///
    /// # Panics
    ///
    /// Panics if the datagram would exceed 65535 bytes.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, payload_len: usize, ident: u16) -> Self {
        let total = HEADER_LEN + payload_len;
        assert!(total <= usize::from(u16::MAX), "IPv4 datagram too large");
        Ipv4Header {
            src,
            dst,
            protocol,
            total_len: total as u16,
            ident,
            ttl: 64,
        }
    }

    /// Payload bytes carried (total length minus header).
    pub fn payload_len(&self) -> usize {
        usize::from(self.total_len).saturating_sub(HEADER_LEN)
    }

    /// Encodes to the 20-byte wire form with a valid header checksum.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut b = [0u8; HEADER_LEN];
        b[0] = 0x45; // version 4, IHL 5
        b[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        b[4..6].copy_from_slice(&self.ident.to_be_bytes());
        b[8] = self.ttl;
        b[9] = self.protocol;
        b[12..16].copy_from_slice(&self.src.0);
        b[16..20].copy_from_slice(&self.dst.0);
        let c = csum::checksum(&b);
        b[10..12].copy_from_slice(&c.to_be_bytes());
        b
    }

    /// Decodes and verifies the head of `buf`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input, [`DecodeError::BadField`]
    /// on a non-4 version or unexpected IHL, [`DecodeError::BadChecksum`]
    /// if the header checksum does not verify.
    pub fn decode(buf: &[u8]) -> Result<Ipv4Header> {
        need(buf, HEADER_LEN)?;
        if buf[0] != 0x45 {
            return Err(DecodeError::BadField("version/ihl"));
        }
        if !csum::verify(&buf[..HEADER_LEN]) {
            return Err(DecodeError::BadChecksum);
        }
        let mut src = [0u8; 4];
        let mut dst = [0u8; 4];
        src.copy_from_slice(&buf[12..16]);
        dst.copy_from_slice(&buf[16..20]);
        Ok(Ipv4Header {
            src: Ipv4Addr(src),
            dst: Ipv4Addr(dst),
            protocol: buf[9],
            total_len: u16::from_be_bytes([buf[2], buf[3]]),
            ident: u16::from_be_bytes([buf[4], buf[5]]),
            ttl: buf[8],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::gen::*;
    use check::{prop_assert_eq, property};

    fn hdr() -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::from_node_id(1),
            Ipv4Addr::from_node_id(2),
            PROTO_UDP,
            100,
            7,
        )
    }

    #[test]
    fn round_trip_and_checksum() {
        let h = hdr();
        let enc = h.encode();
        assert!(csum::verify(&enc));
        assert_eq!(Ipv4Header::decode(&enc), Ok(h));
        assert_eq!(h.payload_len(), 100);
        assert_eq!(h.total_len, 120);
    }

    #[test]
    fn corrupted_header_is_rejected() {
        let mut enc = hdr().encode();
        enc[13] ^= 0xff;
        assert_eq!(Ipv4Header::decode(&enc), Err(DecodeError::BadChecksum));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut enc = hdr().encode();
        enc[0] = 0x46;
        assert_eq!(Ipv4Header::decode(&enc), Err(DecodeError::BadField("version/ihl")));
    }

    #[test]
    fn truncated() {
        assert!(matches!(
            Ipv4Header::decode(&[0x45; 19]),
            Err(DecodeError::Truncated { need: 20, have: 19 })
        ));
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_datagram_panics() {
        let _ = Ipv4Header::new(
            Ipv4Addr::from_node_id(1),
            Ipv4Addr::from_node_id(2),
            PROTO_UDP,
            70_000,
            0,
        );
    }

    #[test]
    fn addr_display() {
        assert_eq!(Ipv4Addr::from_node_id(5).to_string(), "10.0.0.5");
    }

    property! {
        fn prop_round_trip(
            src in byte_array::<4>(),
            dst in byte_array::<4>(),
            proto in any_u8(),
            plen in ints(0usize..60_000),
            ident in any_u16(),
        ) {
            let h = Ipv4Header::new(Ipv4Addr(src), Ipv4Addr(dst), proto, plen, ident);
            prop_assert_eq!(Ipv4Header::decode(&h.encode()), Ok(h));
        }
    }
}
