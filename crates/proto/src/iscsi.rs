//! iSCSI PDU subset: SCSI command / Data-In / Data-Out / response.
//!
//! The NFS server's backing store speaks iSCSI; read responses (Data-In
//! PDUs) carry the logical block numbers that key the LBN half of the
//! network-centric cache (paper §3.2: "Packets returned by the iSCSI
//! storage server come with logical block numbers, which can serve as
//! keys"). Note §3.3's caveat: the iSCSI header alone cannot say whether a
//! block is metadata or regular data — that classification comes from the
//! request context (inode type) the initiator attaches, modelled in the
//! `servers` crate.
//!
//! PDUs use a fixed 48-byte basic header segment; bulk data rides as
//! attached payload segments after the header.

use crate::error::{need, DecodeError, Result};

/// Length of the basic header segment.
pub const BHS_LEN: usize = 48;
/// Block size of the virtual disk the target exports (matches the FS
/// block size so one iSCSI block is one cacheable unit).
pub const BLOCK_SIZE: usize = 4096;

const OP_SCSI_COMMAND: u8 = 0x01;
const OP_DATA_OUT: u8 = 0x05;
const OP_RESPONSE: u8 = 0x21;
const OP_DATA_IN: u8 = 0x25;
const OP_R2T: u8 = 0x31;

const FLAG_FINAL: u8 = 0x80;
const FLAG_READ: u8 = 0x40;
const FLAG_WRITE: u8 = 0x20;

/// Direction of a SCSI command.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ScsiOp {
    /// READ: move blocks target → initiator.
    #[default]
    Read,
    /// WRITE: move blocks initiator → target.
    Write,
}

/// A SCSI command PDU (read or write of whole blocks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ScsiCommand {
    /// Initiator task tag: correlates the command with its data/response.
    pub itt: u32,
    /// Direction.
    pub op: ScsiOp,
    /// First logical block number.
    pub lbn: u64,
    /// Number of blocks to transfer.
    pub blocks: u32,
}

/// A Data-In PDU: one burst of read data from the target.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct DataIn {
    /// Task tag of the command being answered.
    pub itt: u32,
    /// Logical block number of the first byte in this burst.
    pub lbn: u64,
    /// Payload bytes following the header.
    pub data_len: u32,
    /// Whether this is the final burst of the command.
    pub is_final: bool,
}

/// A Data-Out PDU: one burst of write data to the target.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct DataOut {
    /// Task tag of the write command.
    pub itt: u32,
    /// Logical block number of the first byte in this burst.
    pub lbn: u64,
    /// Payload bytes following the header.
    pub data_len: u32,
}

/// A Ready-To-Transfer PDU: the target grants the initiator permission to
/// send a burst of write data (iSCSI's flow-control handshake for writes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ReadyToTransfer {
    /// Task tag of the write command being solicited.
    pub itt: u32,
    /// First logical block the target is ready to receive.
    pub lbn: u64,
    /// Bytes the initiator may now send.
    pub desired_len: u32,
}

impl ReadyToTransfer {
    /// Encodes the 48-byte header.
    pub fn encode(&self) -> [u8; BHS_LEN] {
        bhs(OP_R2T, FLAG_FINAL, 0, self.itt, self.lbn, self.desired_len)
    }
}

/// A SCSI response PDU (command completion).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ScsiResponse {
    /// Task tag of the completed command.
    pub itt: u32,
    /// SCSI status (0 = GOOD).
    pub status: u8,
}

/// Any PDU this subset speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IscsiPdu {
    /// SCSI command.
    Command(ScsiCommand),
    /// Read data burst.
    DataIn(DataIn),
    /// Write data burst.
    DataOut(DataOut),
    /// Completion.
    Response(ScsiResponse),
    /// Write-data solicitation.
    R2T(ReadyToTransfer),
}

fn bhs(opcode: u8, flags: u8, dsl: u32, itt: u32, lbn: u64, extra: u32) -> [u8; BHS_LEN] {
    let mut b = [0u8; BHS_LEN];
    b[0] = opcode;
    b[1] = flags;
    b[4..8].copy_from_slice(&dsl.to_be_bytes());
    b[16..20].copy_from_slice(&itt.to_be_bytes());
    b[20..28].copy_from_slice(&lbn.to_be_bytes());
    b[28..32].copy_from_slice(&extra.to_be_bytes());
    b
}

fn get_u32(b: &[u8], at: usize) -> u32 {
    u32::from_be_bytes(b[at..at + 4].try_into().expect("4 bytes"))
}

fn get_u64(b: &[u8], at: usize) -> u64 {
    u64::from_be_bytes(b[at..at + 8].try_into().expect("8 bytes"))
}

impl ScsiCommand {
    /// Encodes the 48-byte header.
    pub fn encode(&self) -> [u8; BHS_LEN] {
        let dir = match self.op {
            ScsiOp::Read => FLAG_READ,
            ScsiOp::Write => FLAG_WRITE,
        };
        bhs(
            OP_SCSI_COMMAND,
            FLAG_FINAL | dir,
            0,
            self.itt,
            self.lbn,
            self.blocks,
        )
    }

    /// Bytes this command transfers.
    pub fn transfer_len(&self) -> usize {
        self.blocks as usize * BLOCK_SIZE
    }
}

impl DataIn {
    /// Encodes the 48-byte header.
    pub fn encode(&self) -> [u8; BHS_LEN] {
        let f = if self.is_final { FLAG_FINAL } else { 0 };
        bhs(OP_DATA_IN, f, self.data_len, self.itt, self.lbn, 0)
    }
}

impl DataOut {
    /// Encodes the 48-byte header.
    pub fn encode(&self) -> [u8; BHS_LEN] {
        bhs(OP_DATA_OUT, FLAG_FINAL, self.data_len, self.itt, self.lbn, 0)
    }
}

impl ScsiResponse {
    /// Encodes the 48-byte header.
    pub fn encode(&self) -> [u8; BHS_LEN] {
        let mut b = bhs(OP_RESPONSE, FLAG_FINAL, 0, self.itt, 0, 0);
        b[3] = self.status;
        b
    }
}

impl IscsiPdu {
    /// Encodes any PDU's 48-byte header.
    pub fn encode(&self) -> [u8; BHS_LEN] {
        match self {
            IscsiPdu::Command(c) => c.encode(),
            IscsiPdu::DataIn(d) => d.encode(),
            IscsiPdu::DataOut(d) => d.encode(),
            IscsiPdu::Response(r) => r.encode(),
            IscsiPdu::R2T(r) => r.encode(),
        }
    }

    /// Decodes a PDU header from the head of `buf`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input,
    /// [`DecodeError::Unsupported`] on an opcode outside the subset.
    pub fn decode(buf: &[u8]) -> Result<IscsiPdu> {
        need(buf, BHS_LEN)?;
        let itt = get_u32(buf, 16);
        let lbn = get_u64(buf, 20);
        match buf[0] {
            OP_SCSI_COMMAND => {
                let op = if buf[1] & FLAG_READ != 0 {
                    ScsiOp::Read
                } else if buf[1] & FLAG_WRITE != 0 {
                    ScsiOp::Write
                } else {
                    return Err(DecodeError::BadField("command direction"));
                };
                Ok(IscsiPdu::Command(ScsiCommand {
                    itt,
                    op,
                    lbn,
                    blocks: get_u32(buf, 28),
                }))
            }
            OP_DATA_IN => Ok(IscsiPdu::DataIn(DataIn {
                itt,
                lbn,
                data_len: get_u32(buf, 4),
                is_final: buf[1] & FLAG_FINAL != 0,
            })),
            OP_DATA_OUT => Ok(IscsiPdu::DataOut(DataOut {
                itt,
                lbn,
                data_len: get_u32(buf, 4),
            })),
            OP_RESPONSE => Ok(IscsiPdu::Response(ScsiResponse {
                itt,
                status: buf[3],
            })),
            OP_R2T => Ok(IscsiPdu::R2T(ReadyToTransfer {
                itt,
                lbn,
                desired_len: get_u32(buf, 28),
            })),
            _ => Err(DecodeError::Unsupported("iSCSI opcode")),
        }
    }

    /// Reads only the opcode discriminant — what the NCache module peeks
    /// at the driver boundary.
    pub fn peek_is_data_in(buf: &[u8]) -> bool {
        buf.first() == Some(&OP_DATA_IN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::gen::*;
    use check::{prop_assert_eq, property};

    #[test]
    fn command_round_trip_read_and_write() {
        for op in [ScsiOp::Read, ScsiOp::Write] {
            let c = ScsiCommand {
                itt: 7,
                op,
                lbn: 123_456_789,
                blocks: 8,
            };
            assert_eq!(IscsiPdu::decode(&c.encode()), Ok(IscsiPdu::Command(c)));
        }
    }

    #[test]
    fn transfer_len() {
        let c = ScsiCommand {
            itt: 0,
            op: ScsiOp::Read,
            lbn: 0,
            blocks: 8,
        };
        assert_eq!(c.transfer_len(), 32_768);
    }

    #[test]
    fn data_in_round_trip_final_and_not() {
        for is_final in [true, false] {
            let d = DataIn {
                itt: 9,
                lbn: 42,
                data_len: 4096,
                is_final,
            };
            assert_eq!(IscsiPdu::decode(&d.encode()), Ok(IscsiPdu::DataIn(d)));
        }
    }

    #[test]
    fn data_out_round_trip() {
        let d = DataOut {
            itt: 5,
            lbn: 99,
            data_len: 8192,
        };
        assert_eq!(IscsiPdu::decode(&d.encode()), Ok(IscsiPdu::DataOut(d)));
    }

    #[test]
    fn response_round_trip() {
        let r = ScsiResponse { itt: 3, status: 0 };
        assert_eq!(IscsiPdu::decode(&r.encode()), Ok(IscsiPdu::Response(r)));
        let bad = ScsiResponse { itt: 3, status: 2 };
        assert_eq!(IscsiPdu::decode(&bad.encode()), Ok(IscsiPdu::Response(bad)));
    }

    #[test]
    fn r2t_round_trip() {
        let r = ReadyToTransfer {
            itt: 11,
            lbn: 77,
            desired_len: 4096,
        };
        assert_eq!(IscsiPdu::decode(&r.encode()), Ok(IscsiPdu::R2T(r)));
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut b = [0u8; BHS_LEN];
        b[0] = 0x77;
        assert_eq!(
            IscsiPdu::decode(&b),
            Err(DecodeError::Unsupported("iSCSI opcode"))
        );
    }

    #[test]
    fn command_without_direction_rejected() {
        let mut b = ScsiCommand::default().encode();
        b[1] = FLAG_FINAL; // clear direction bits
        assert_eq!(
            IscsiPdu::decode(&b),
            Err(DecodeError::BadField("command direction"))
        );
    }

    #[test]
    fn truncated() {
        assert!(IscsiPdu::decode(&[0; 47]).is_err());
    }

    #[test]
    fn peek_is_data_in() {
        let d = DataIn::default().encode();
        assert!(IscsiPdu::peek_is_data_in(&d));
        let c = ScsiCommand::default().encode();
        assert!(!IscsiPdu::peek_is_data_in(&c));
        assert!(!IscsiPdu::peek_is_data_in(&[]));
    }

    property! {
        fn prop_command_round_trip(itt in any_u32(), lbn in any_u64(), blocks in any_u32(), write in any_bool()) {
            let c = ScsiCommand {
                itt,
                op: if write { ScsiOp::Write } else { ScsiOp::Read },
                lbn,
                blocks,
            };
            prop_assert_eq!(IscsiPdu::decode(&c.encode()), Ok(IscsiPdu::Command(c)));
        }

        fn prop_data_in_round_trip(itt in any_u32(), lbn in any_u64(), len in any_u32(), fin in any_bool()) {
            let d = DataIn { itt, lbn, data_len: len, is_final: fin };
            prop_assert_eq!(IscsiPdu::decode(&d.encode()), Ok(IscsiPdu::DataIn(d)));
        }
    }
}
