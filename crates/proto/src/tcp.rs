//! TCP-lite: headers plus stream segmentation/reassembly.
//!
//! The testbed network is a single lossless Gigabit switch, so this subset
//! omits retransmission and congestion control; what matters to the
//! reproduction is (a) MSS segmentation — it determines per-packet CPU
//! costs, which are higher for TCP than UDP (paper §5.5) — and (b) ordered
//! stream bytes, which the NCache HTTP tracker uses to find the
//! header/body boundary in kHTTPd responses (§4.3).

use crate::error::{need, DecodeError, Result};

/// Length of an option-less TCP header.
pub const HEADER_LEN: usize = 20;
/// The testbed MSS at MTU 1500 (1500 − 20 IP − 20 TCP − 12 options ≈ 1448,
/// matching Linux's typical timestamped MSS).
pub const MSS: usize = 1448;
/// The HTTP port kHTTPd listens on.
pub const HTTP_PORT: u16 = 80;

/// TCP flag bits (subset).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TcpFlags {
    /// Connection open.
    pub syn: bool,
    /// Acknowledgement valid.
    pub ack: bool,
    /// Sender is done.
    pub fin: bool,
    /// Push to application.
    pub psh: bool,
}

impl TcpFlags {
    fn to_byte(self) -> u8 {
        u8::from(self.fin)
            | u8::from(self.syn) << 1
            | u8::from(self.psh) << 3
            | u8::from(self.ack) << 4
    }

    fn from_byte(b: u8) -> Self {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// An option-less TCP header.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack_no: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

impl TcpHeader {
    /// A data segment header.
    pub fn data(src_port: u16, dst_port: u16, seq: u32) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq,
            ack_no: 0,
            flags: TcpFlags {
                ack: true,
                psh: true,
                ..TcpFlags::default()
            },
            window: 0xffff,
        }
    }

    /// Encodes to the 20-byte wire form (checksum offloaded: field zero).
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut b = [0u8; HEADER_LEN];
        b[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        b[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        b[4..8].copy_from_slice(&self.seq.to_be_bytes());
        b[8..12].copy_from_slice(&self.ack_no.to_be_bytes());
        b[12] = 5 << 4; // data offset = 5 words
        b[13] = self.flags.to_byte();
        b[14..16].copy_from_slice(&self.window.to_be_bytes());
        b
    }

    /// Decodes from the head of `buf`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input; [`DecodeError::BadField`]
    /// if the data offset is not 5 words (options are not supported).
    pub fn decode(buf: &[u8]) -> Result<TcpHeader> {
        need(buf, HEADER_LEN)?;
        if buf[12] >> 4 != 5 {
            return Err(DecodeError::BadField("data offset"));
        }
        Ok(TcpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack_no: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            flags: TcpFlags::from_byte(buf[13]),
            window: u16::from_be_bytes([buf[14], buf[15]]),
        })
    }
}

/// Splits an outgoing byte stream into MSS-sized ranges with sequence
/// numbers; the sender-side half of TCP-lite.
///
/// # Examples
///
/// ```
/// use proto::tcp::{Segmenter, MSS};
/// let mut s = Segmenter::new(1000);
/// let segs = s.segment(MSS + 100);
/// assert_eq!(segs, vec![(1000, MSS), (1000 + MSS as u32, 100)]);
/// assert_eq!(s.next_seq(), 1000 + MSS as u32 + 100);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segmenter {
    next_seq: u32,
}

impl Segmenter {
    /// A segmenter starting at initial sequence number `isn`.
    pub fn new(isn: u32) -> Self {
        Segmenter { next_seq: isn }
    }

    /// Sequence number the next byte will carry.
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }

    /// Consumes `len` stream bytes, returning `(seq, len)` per segment.
    pub fn segment(&mut self, len: usize) -> Vec<(u32, usize)> {
        let mut out = Vec::with_capacity(len.div_ceil(MSS).max(1));
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(MSS);
            out.push((self.next_seq, take));
            self.next_seq = self.next_seq.wrapping_add(take as u32);
            remaining -= take;
        }
        if len == 0 {
            out.push((self.next_seq, 0));
        }
        out
    }
}

/// Receiver-side in-order reassembly: accepts segments and exposes the
/// contiguous stream prefix.
#[derive(Clone, Debug, Default)]
pub struct Reassembler {
    expected: u32,
    stream: Vec<u8>,
}

impl Reassembler {
    /// A reassembler expecting first byte `isn`.
    pub fn new(isn: u32) -> Self {
        Reassembler {
            expected: isn,
            stream: Vec::new(),
        }
    }

    /// Accepts a segment.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::BadField`] if the segment is not the next
    /// expected one (the simulated network never reorders, so this
    /// indicates a bug).
    pub fn accept(&mut self, seq: u32, payload: &[u8]) -> Result<()> {
        if seq != self.expected {
            return Err(DecodeError::BadField("out-of-order TCP segment"));
        }
        self.stream.extend_from_slice(payload);
        self.expected = self.expected.wrapping_add(payload.len() as u32);
        Ok(())
    }

    /// The reassembled stream so far.
    pub fn stream(&self) -> &[u8] {
        &self.stream
    }

    /// Total contiguous bytes received.
    pub fn len(&self) -> usize {
        self.stream.len()
    }

    /// Whether nothing has arrived yet.
    pub fn is_empty(&self) -> bool {
        self.stream.is_empty()
    }

    /// Drains and returns the reassembled stream, keeping sequence state.
    pub fn take_stream(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::gen::*;
    use check::{prop_assert, prop_assert_eq, property};

    #[test]
    fn header_round_trip() {
        let h = TcpHeader::data(4000, HTTP_PORT, 123_456);
        assert_eq!(TcpHeader::decode(&h.encode()), Ok(h));
        assert!(h.flags.ack && h.flags.psh && !h.flags.syn && !h.flags.fin);
    }

    #[test]
    fn flags_round_trip_all_combinations() {
        for bits in 0..16u8 {
            let f = TcpFlags {
                syn: bits & 1 != 0,
                ack: bits & 2 != 0,
                fin: bits & 4 != 0,
                psh: bits & 8 != 0,
            };
            assert_eq!(TcpFlags::from_byte(f.to_byte()), f);
        }
    }

    #[test]
    fn bad_data_offset_rejected() {
        let mut enc = TcpHeader::data(1, 2, 0).encode();
        enc[12] = 6 << 4;
        assert_eq!(
            TcpHeader::decode(&enc),
            Err(DecodeError::BadField("data offset"))
        );
    }

    #[test]
    fn segmenter_boundaries() {
        let mut s = Segmenter::new(0);
        assert_eq!(s.segment(MSS), vec![(0, MSS)]);
        assert_eq!(s.segment(1), vec![(MSS as u32, 1)]);
        assert_eq!(s.segment(0), vec![(MSS as u32 + 1, 0)]);
    }

    #[test]
    fn segmenter_wraps_sequence_space() {
        let mut s = Segmenter::new(u32::MAX - 10);
        let segs = s.segment(100);
        assert_eq!(segs[0], (u32::MAX - 10, 100));
        assert_eq!(s.next_seq(), 89);
    }

    #[test]
    fn reassembler_in_order() {
        let mut r = Reassembler::new(500);
        r.accept(500, b"hello ").expect("in order");
        r.accept(506, b"world").expect("in order");
        assert_eq!(r.stream(), b"hello world");
        assert_eq!(r.len(), 11);
        assert!(!r.is_empty());
        assert_eq!(r.take_stream(), b"hello world");
        assert!(r.is_empty());
        // Sequence state survives the drain.
        r.accept(511, b"!").expect("in order");
        assert_eq!(r.stream(), b"!");
    }

    #[test]
    fn reassembler_rejects_gap() {
        let mut r = Reassembler::new(0);
        assert!(r.accept(10, b"x").is_err());
    }

    property! {
        fn prop_segmenter_covers_stream_exactly(isn in any_u32(), len in ints(0usize..100_000)) {
            let mut s = Segmenter::new(isn);
            let segs = s.segment(len);
            let total: usize = segs.iter().map(|&(_, l)| l).sum();
            prop_assert_eq!(total, len);
            // Segments are contiguous in sequence space.
            let mut expect = isn;
            for &(seq, l) in &segs {
                prop_assert_eq!(seq, expect);
                prop_assert!(l <= MSS);
                expect = expect.wrapping_add(l as u32);
            }
        }

        fn prop_segment_then_reassemble(data in bytes(0..20_000)) {
            let mut s = Segmenter::new(77);
            let mut r = Reassembler::new(77);
            let segs = s.segment(data.len());
            let mut at = 0;
            for (seq, l) in segs {
                if l > 0 {
                    r.accept(seq, &data[at..at + l]).expect("in order");
                    at += l;
                } else {
                    r.accept(seq, &[]).expect("empty ok");
                }
            }
            prop_assert_eq!(r.stream(), &data[..]);
        }
    }
}
