//! SUN RPC (ONC RPC v2) call and reply headers, AUTH_NONE only.
//!
//! This is the layer NCache's classifier reads: "The Remote Procedure Call
//! (RPC) field in NFS messages specifies the operation type. Among incoming
//! NFS packets, only the payloads of NFS write request packets are cached
//! ... and among outgoing NFS packets only the payloads of NFS read replies
//! are replaced" (paper §3.3).

use crate::error::{need, DecodeError, Result};

/// Encoded length of a call header with AUTH_NONE credentials.
pub const CALL_LEN: usize = 40;
/// Encoded length of an accepted-success reply header.
pub const REPLY_LEN: usize = 24;
/// RPC program number for NFS.
pub const PROG_NFS: u32 = 100_003;
/// The NFS program version this subset speaks.
pub const NFS_VERS: u32 = 2;

const MSG_CALL: u32 = 0;
const MSG_REPLY: u32 = 1;
const RPC_VERSION: u32 = 2;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn get_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_be_bytes(buf[at..at + 4].try_into().expect("4 bytes"))
}

/// An RPC call header (credentials and verifier are AUTH_NONE).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct RpcCall {
    /// Transaction id, echoed by the reply.
    pub xid: u32,
    /// Program number (e.g. [`PROG_NFS`]).
    pub prog: u32,
    /// Program version.
    pub vers: u32,
    /// Procedure number within the program.
    pub proc: u32,
}

impl RpcCall {
    /// An NFS call for procedure `proc`.
    pub fn nfs(xid: u32, proc: u32) -> Self {
        RpcCall {
            xid,
            prog: PROG_NFS,
            vers: NFS_VERS,
            proc,
        }
    }

    /// Encodes to the 40-byte wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(CALL_LEN);
        put_u32(&mut b, self.xid);
        put_u32(&mut b, MSG_CALL);
        put_u32(&mut b, RPC_VERSION);
        put_u32(&mut b, self.prog);
        put_u32(&mut b, self.vers);
        put_u32(&mut b, self.proc);
        put_u32(&mut b, 0); // cred flavor AUTH_NONE
        put_u32(&mut b, 0); // cred length
        put_u32(&mut b, 0); // verf flavor
        put_u32(&mut b, 0); // verf length
        b
    }

    /// Decodes from the head of `buf`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input; [`DecodeError::BadField`]
    /// if the message is not a version-2 RPC call with AUTH_NONE.
    pub fn decode(buf: &[u8]) -> Result<RpcCall> {
        need(buf, CALL_LEN)?;
        if get_u32(buf, 4) != MSG_CALL {
            return Err(DecodeError::BadField("message type"));
        }
        if get_u32(buf, 8) != RPC_VERSION {
            return Err(DecodeError::BadField("rpc version"));
        }
        if get_u32(buf, 24) != 0 || get_u32(buf, 28) != 0 {
            return Err(DecodeError::Unsupported("non-AUTH_NONE credentials"));
        }
        Ok(RpcCall {
            xid: get_u32(buf, 0),
            prog: get_u32(buf, 12),
            vers: get_u32(buf, 16),
            proc: get_u32(buf, 20),
        })
    }

    /// Reads only the procedure number of an encoded call — the single
    /// field the NCache classifier peeks at the driver boundary.
    pub fn peek_proc(buf: &[u8]) -> Result<u32> {
        need(buf, 24)?;
        if get_u32(buf, 4) != MSG_CALL {
            return Err(DecodeError::BadField("message type"));
        }
        Ok(get_u32(buf, 20))
    }
}

/// An accepted, successful RPC reply header.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct RpcReply {
    /// Transaction id of the call being answered.
    pub xid: u32,
}

impl RpcReply {
    /// A success reply to `xid`.
    pub fn new(xid: u32) -> Self {
        RpcReply { xid }
    }

    /// Encodes to the 24-byte wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(REPLY_LEN);
        put_u32(&mut b, self.xid);
        put_u32(&mut b, MSG_REPLY);
        put_u32(&mut b, 0); // MSG_ACCEPTED
        put_u32(&mut b, 0); // verf flavor
        put_u32(&mut b, 0); // verf length
        put_u32(&mut b, 0); // SUCCESS
        b
    }

    /// Decodes from the head of `buf`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input; [`DecodeError::BadField`]
    /// if the message is not an accepted, successful reply.
    pub fn decode(buf: &[u8]) -> Result<RpcReply> {
        need(buf, REPLY_LEN)?;
        if get_u32(buf, 4) != MSG_REPLY {
            return Err(DecodeError::BadField("message type"));
        }
        if get_u32(buf, 8) != 0 {
            return Err(DecodeError::Unsupported("denied reply"));
        }
        if get_u32(buf, 20) != 0 {
            return Err(DecodeError::Unsupported("non-success accept status"));
        }
        Ok(RpcReply {
            xid: get_u32(buf, 0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::gen::*;
    use check::{prop_assert_eq, property};

    #[test]
    fn call_round_trip() {
        let c = RpcCall::nfs(0xdead_beef, 6);
        let enc = c.encode();
        assert_eq!(enc.len(), CALL_LEN);
        assert_eq!(RpcCall::decode(&enc), Ok(c));
        assert_eq!(RpcCall::peek_proc(&enc), Ok(6));
    }

    #[test]
    fn reply_round_trip() {
        let r = RpcReply::new(42);
        let enc = r.encode();
        assert_eq!(enc.len(), REPLY_LEN);
        assert_eq!(RpcReply::decode(&enc), Ok(r));
    }

    #[test]
    fn call_and_reply_are_distinguished() {
        let call = RpcCall::nfs(1, 2).encode();
        let reply = RpcReply::new(1).encode();
        assert!(RpcCall::decode(&reply).is_err());
        assert!(RpcReply::decode(&call).is_err());
        assert!(RpcCall::peek_proc(&reply).is_err());
    }

    #[test]
    fn bad_rpc_version_rejected() {
        let mut enc = RpcCall::nfs(1, 2).encode();
        enc[11] = 9;
        assert_eq!(RpcCall::decode(&enc), Err(DecodeError::BadField("rpc version")));
    }

    #[test]
    fn non_auth_none_rejected() {
        let mut enc = RpcCall::nfs(1, 2).encode();
        enc[27] = 1; // cred flavor = AUTH_SYS
        assert_eq!(
            RpcCall::decode(&enc),
            Err(DecodeError::Unsupported("non-AUTH_NONE credentials"))
        );
    }

    #[test]
    fn truncated_inputs() {
        assert!(RpcCall::decode(&[0; 39]).is_err());
        assert!(RpcReply::decode(&[0; 23]).is_err());
        assert!(RpcCall::peek_proc(&[0; 23]).is_err());
    }

    property! {
        fn prop_call_round_trip(xid in any_u32(), prog in any_u32(), vers in any_u32(), pr in any_u32()) {
            let c = RpcCall { xid, prog, vers, proc: pr };
            prop_assert_eq!(RpcCall::decode(&c.encode()), Ok(c));
            prop_assert_eq!(RpcCall::peek_proc(&c.encode()), Ok(pr));
        }

        fn prop_reply_round_trip(xid in any_u32()) {
            let r = RpcReply::new(xid);
            prop_assert_eq!(RpcReply::decode(&r.encode()), Ok(r));
        }
    }
}
