#![warn(missing_docs)]
//! Wire-format subsets of every protocol the pass-through server speaks.
//!
//! The NCache design (paper §3.3, §3.5) classifies traffic as *metadata*
//! versus *regular data* by inspecting higher-level protocol headers — the
//! RPC procedure number for NFS, request context (inode type) for iSCSI, and
//! the header/body split for HTTP. This crate implements faithful, testable
//! codecs for exactly the header fields that classification and substitution
//! rely on:
//!
//! * [`csum`] — the Internet checksum (RFC 1071), including incremental
//!   update, which is what lets NCache reuse a stored checksum after
//!   substituting a packet's payload.
//! * [`ethernet`], [`ipv4`], [`udp`], [`tcp`] — framing. NFS runs over UDP
//!   and HTTP over TCP in the paper's experiments (§5.5).
//! * [`rpc`], [`nfs`] — SUN RPC and the NFS procedures the evaluation
//!   exercises (GETATTR, LOOKUP, READ, WRITE).
//! * [`iscsi`] — the SCSI command / Data-In / Data-Out PDU subset the
//!   NFS-server-to-storage-server path uses.
//! * [`http`] — HTTP/1.0 requests and responses for the kHTTPd experiments.
//!
//! All decode functions are pure: `&[u8]` in, structured header out, with
//! byte-exact round-trip tests and property tests in each module.

pub mod csum;
pub mod error;
pub mod ethernet;
pub mod http;
pub mod ipv4;
pub mod iscsi;
pub mod nfs;
pub mod rpc;
pub mod tcp;
pub mod udp;

pub use error::{DecodeError, Result};
