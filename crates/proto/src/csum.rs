//! The Internet checksum (RFC 1071), with incremental update (RFC 1624).
//!
//! NCache stores payload packets checksum-valid and reuses ("inherits") the
//! stored checksum when the packet is substituted into a new reply, instead
//! of recomputing it per transmission (paper §1). The incremental-update
//! routine here is what makes that sound: when only a header field changes,
//! the new checksum is derived in O(1) from the old one, and the property
//! tests prove it equals a full recomputation.

/// Sums `data` as big-endian 16-bit words into a 32-bit accumulator
/// (no folding). Odd trailing bytes are padded with zero, per RFC 1071.
pub fn sum_words(data: &[u8]) -> u32 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

/// Folds a 32-bit accumulator to 16 bits with end-around carry.
pub fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// The Internet checksum of `data`: the one's-complement of the folded
/// one's-complement sum.
///
/// # Examples
///
/// ```
/// // RFC 1071's worked example.
/// let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
/// assert_eq!(proto::csum::checksum(&data), !0xddf2);
/// ```
pub fn checksum(data: &[u8]) -> u16 {
    !fold(sum_words(data))
}

/// Checksum over several byte runs, as if they were concatenated —
/// provided every run except the last has even length (true for all header
/// + payload layouts in this crate).
pub fn checksum_vectored(runs: &[&[u8]]) -> u16 {
    let mut sum = 0u32;
    for (i, run) in runs.iter().enumerate() {
        debug_assert!(
            i == runs.len() - 1 || run.len() % 2 == 0,
            "only the final run may have odd length"
        );
        sum += sum_words(run);
    }
    !fold(sum)
}

/// Incrementally updates checksum `old_csum` after a 16-bit word of the
/// covered data changed from `old_word` to `new_word` (RFC 1624 eqn 3).
pub fn update(old_csum: u16, old_word: u16, new_word: u16) -> u16 {
    // HC' = ~(~HC + ~m + m')
    let sum = u32::from(!old_csum) + u32::from(!old_word) + u32::from(new_word);
    !fold(sum)
}

/// Verifies that `data` (which includes its checksum field) sums to the
/// all-ones pattern, the standard receive-side check.
pub fn verify(data: &[u8]) -> bool {
    fold(sum_words(data)) == 0xffff
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::gen::*;
    use check::{prop_assert, prop_assert_eq, property};

    #[test]
    fn rfc1071_example() {
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(sum_words(&data), 0x2ddf0);
        assert_eq!(fold(0x2ddf0), 0xddf2);
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn empty_data() {
        assert_eq!(checksum(&[]), 0xffff);
        assert!(!verify(&[]) || fold(sum_words(&[])) == 0);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), checksum(&[0xab, 0x00]));
    }

    #[test]
    fn verify_accepts_valid_packet() {
        // Build a packet with a checksum field at [2..4].
        let mut pkt = vec![0x12, 0x34, 0x00, 0x00, 0x56, 0x78, 0x9a, 0xbc];
        let c = checksum(&pkt);
        pkt[2..4].copy_from_slice(&c.to_be_bytes());
        assert!(verify(&pkt));
        pkt[5] ^= 0x01;
        assert!(!verify(&pkt));
    }

    #[test]
    fn vectored_matches_contiguous() {
        let a = [1u8, 2, 3, 4];
        let b = [5u8, 6, 7];
        let whole = [1u8, 2, 3, 4, 5, 6, 7];
        assert_eq!(checksum_vectored(&[&a, &b]), checksum(&whole));
    }

    property! {
        fn prop_incremental_update_equals_recompute(
            mut data in bytes(2..256),
            word_idx in ints(0usize..64),
            new_word in any_u16(),
        ) {
            // Make even length so words align.
            if data.len() % 2 == 1 { data.push(0); }
            let idx = (word_idx * 2) % data.len();
            let idx = idx & !1; // align to word
            let old_word = u16::from_be_bytes([data[idx], data[idx + 1]]);
            let old = checksum(&data);
            data[idx..idx + 2].copy_from_slice(&new_word.to_be_bytes());
            let recomputed = checksum(&data);
            let incremental = update(old, old_word, new_word);
            // One's-complement checksums have two representations of zero;
            // compare as folded sums of the verifying form instead.
            prop_assert_eq!(fold(u32::from(!incremental)), fold(u32::from(!recomputed)));
        }

        fn prop_verify_round_trip(data in bytes(4..128)) {
            let mut pkt = data;
            if pkt.len() % 2 == 1 { pkt.push(0); }
            pkt[0] = 0; pkt[1] = 0; // checksum field at [0..2]
            let c = checksum(&pkt);
            pkt[0..2].copy_from_slice(&c.to_be_bytes());
            prop_assert!(verify(&pkt));
        }

        fn prop_split_invariance(
            data in bytes(0..200),
            cut in ints(0usize..200),
        ) {
            let cut = (cut.min(data.len())) & !1; // even split point
            let (a, b) = data.split_at(cut);
            prop_assert_eq!(checksum_vectored(&[a, b]), checksum(&data));
        }
    }
}
