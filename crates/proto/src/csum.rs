//! The Internet checksum (RFC 1071), with incremental update (RFC 1624).
//!
//! NCache stores payload packets checksum-valid and reuses ("inherits") the
//! stored checksum when the packet is substituted into a new reply, instead
//! of recomputing it per transmission (paper §1). The incremental-update
//! routine here is what makes that sound: when only a header field changes,
//! the new checksum is derived in O(1) from the old one, and the property
//! tests prove it equals a full recomputation.

/// Sums `data` as big-endian 16-bit words into a 32-bit accumulator
/// (no folding). Odd trailing bytes are padded with zero, per RFC 1071.
///
/// The hot loop accumulates eight bytes at a time into four u64 lanes
/// (one per 16-bit column of the u64 word) with a 4-way unroll; the
/// one's-complement sum is commutative and associative, so any grouping
/// of the 16-bit words folds to the same value as the byte-wise walk —
/// `prop_u64_path_equals_bytewise_path` proves it against
/// [`sum_words_bytewise`] on arbitrary input.
pub fn sum_words(data: &[u8]) -> u32 {
    // Word-at-a-time path. A big-endian u64 read of 8 bytes holds four
    // 16-bit words; masking out the odd and even columns gives two
    // 32-bit-spaced lanes that can absorb many additions without
    // overflow (each lane value < 2^16, so a u64 lane pair overflows
    // only after ~2^32 words — far beyond any packet).
    const MASK: u64 = 0x0000_ffff_0000_ffff;
    let mut even = 0u64; // words 0 and 2 of each u64
    let mut odd = 0u64; // words 1 and 3 of each u64
    let mut chunks32 = data.chunks_exact(32);
    for c in &mut chunks32 {
        // 4-way unroll: 32 bytes per trip.
        let a = u64::from_be_bytes(c[0..8].try_into().expect("8-byte chunk"));
        let b = u64::from_be_bytes(c[8..16].try_into().expect("8-byte chunk"));
        let d = u64::from_be_bytes(c[16..24].try_into().expect("8-byte chunk"));
        let e = u64::from_be_bytes(c[24..32].try_into().expect("8-byte chunk"));
        even += (a >> 16) & MASK;
        odd += a & MASK;
        even += (b >> 16) & MASK;
        odd += b & MASK;
        even += (d >> 16) & MASK;
        odd += d & MASK;
        even += (e >> 16) & MASK;
        odd += e & MASK;
    }
    let mut rest = chunks32.remainder();
    let mut chunks8 = rest.chunks_exact(8);
    for c in &mut chunks8 {
        let a = u64::from_be_bytes(c.try_into().expect("8-byte chunk"));
        even += (a >> 16) & MASK;
        odd += a & MASK;
    }
    rest = chunks8.remainder();
    // Fold the four u64 lanes (each < 2^48) into one u64, then to u32
    // with end-around carries preserved: sums of 16-bit words fit u64
    // exactly, and the final fold to 32 bits keeps every carry.
    let mut total = (even & 0xffff_ffff)
        + (even >> 32)
        + (odd & 0xffff_ffff)
        + (odd >> 32);
    // Tail bytes (< 8), byte-wise as before.
    let mut chunks2 = rest.chunks_exact(2);
    for c in &mut chunks2 {
        total += u64::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks2.remainder() {
        total += u64::from(u16::from_be_bytes([*last, 0]));
    }
    // total < (number of words) * 2^16 + carries — collapse to the same
    // 32-bit accumulator shape the byte-wise version produces, folding
    // the overflow above 32 bits back in (end-around carry, which the
    // one's-complement sum is invariant under).
    while total >> 32 != 0 {
        total = (total & 0xffff_ffff) + (total >> 32);
    }
    total as u32
}

/// The scalar reference: sums `data` two bytes at a time. This is the
/// version the paper-era code used; [`sum_words`] must fold to the same
/// checksum on every input (proven by property test), it just gets there
/// eight bytes per step.
pub fn sum_words_bytewise(data: &[u8]) -> u32 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum = sum.wrapping_add(u32::from(u16::from_be_bytes([c[0], c[1]])));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

/// Folds a 32-bit accumulator to 16 bits with end-around carry.
pub fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// The Internet checksum of `data`: the one's-complement of the folded
/// one's-complement sum.
///
/// # Examples
///
/// ```
/// // RFC 1071's worked example.
/// let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
/// assert_eq!(proto::csum::checksum(&data), !0xddf2);
/// ```
pub fn checksum(data: &[u8]) -> u16 {
    !fold(sum_words(data))
}

/// Checksum over several byte runs, as if they were concatenated —
/// provided every run except the last has even length (true for all header
/// + payload layouts in this crate).
pub fn checksum_vectored(runs: &[&[u8]]) -> u16 {
    let mut sum = 0u32;
    for (i, run) in runs.iter().enumerate() {
        debug_assert!(
            i == runs.len() - 1 || run.len() % 2 == 0,
            "only the final run may have odd length"
        );
        sum += sum_words(run);
    }
    !fold(sum)
}

/// Incrementally updates checksum `old_csum` after a 16-bit word of the
/// covered data changed from `old_word` to `new_word` (RFC 1624 eqn 3).
pub fn update(old_csum: u16, old_word: u16, new_word: u16) -> u16 {
    // HC' = ~(~HC + ~m + m')
    let sum = u32::from(!old_csum) + u32::from(!old_word) + u32::from(new_word);
    !fold(sum)
}

/// Verifies that `data` (which includes its checksum field) sums to the
/// all-ones pattern, the standard receive-side check.
pub fn verify(data: &[u8]) -> bool {
    fold(sum_words(data)) == 0xffff
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::gen::*;
    use check::{prop_assert, prop_assert_eq, property};

    #[test]
    fn rfc1071_example() {
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(sum_words(&data), 0x2ddf0);
        assert_eq!(fold(0x2ddf0), 0xddf2);
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn empty_data() {
        assert_eq!(checksum(&[]), 0xffff);
        assert!(!verify(&[]) || fold(sum_words(&[])) == 0);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), checksum(&[0xab, 0x00]));
    }

    #[test]
    fn verify_accepts_valid_packet() {
        // Build a packet with a checksum field at [2..4].
        let mut pkt = vec![0x12, 0x34, 0x00, 0x00, 0x56, 0x78, 0x9a, 0xbc];
        let c = checksum(&pkt);
        pkt[2..4].copy_from_slice(&c.to_be_bytes());
        assert!(verify(&pkt));
        pkt[5] ^= 0x01;
        assert!(!verify(&pkt));
    }

    #[test]
    fn vectored_matches_contiguous() {
        let a = [1u8, 2, 3, 4];
        let b = [5u8, 6, 7];
        let whole = [1u8, 2, 3, 4, 5, 6, 7];
        assert_eq!(checksum_vectored(&[&a, &b]), checksum(&whole));
    }

    property! {
        fn prop_incremental_update_equals_recompute(
            mut data in bytes(2..256),
            word_idx in ints(0usize..64),
            new_word in any_u16(),
        ) {
            // Make even length so words align.
            if data.len() % 2 == 1 { data.push(0); }
            let idx = (word_idx * 2) % data.len();
            let idx = idx & !1; // align to word
            let old_word = u16::from_be_bytes([data[idx], data[idx + 1]]);
            let old = checksum(&data);
            data[idx..idx + 2].copy_from_slice(&new_word.to_be_bytes());
            let recomputed = checksum(&data);
            let incremental = update(old, old_word, new_word);
            // One's-complement checksums have two representations of zero;
            // compare as folded sums of the verifying form instead.
            prop_assert_eq!(fold(u32::from(!incremental)), fold(u32::from(!recomputed)));
        }

        fn prop_verify_round_trip(data in bytes(4..128)) {
            let mut pkt = data;
            if pkt.len() % 2 == 1 { pkt.push(0); }
            pkt[0] = 0; pkt[1] = 0; // checksum field at [0..2]
            let c = checksum(&pkt);
            pkt[0..2].copy_from_slice(&c.to_be_bytes());
            prop_assert!(verify(&pkt));
        }

        fn prop_u64_path_equals_bytewise_path(data in bytes(0..600)) {
            // Lengths in 0..600 cross every boundary in the word path:
            // the 32-byte unroll, the 8-byte tail loop, the 2-byte tail
            // and the odd final byte. The accumulators differ in shape
            // (u64 lanes vs a wrapping u32), so compare the folded
            // one's-complement value, which is what any caller uses.
            prop_assert_eq!(
                fold(sum_words(&data)),
                fold(sum_words_bytewise(&data))
            );
        }

        fn prop_split_invariance(
            data in bytes(0..200),
            cut in ints(0usize..200),
        ) {
            let cut = (cut.min(data.len())) & !1; // even split point
            let (a, b) = data.split_at(cut);
            prop_assert_eq!(checksum_vectored(&[a, b]), checksum(&data));
        }
    }
}
