//! NFS version 2 message subset: GETATTR, LOOKUP, READ, WRITE.
//!
//! These are the procedures the paper's evaluation exercises. READ replies
//! and WRITE requests carry regular-data payloads — the two packet kinds
//! NCache caches/substitutes (§3.3) — while everything else is metadata and
//! travels the conventional copying path.
//!
//! Encoders produce *header bytes only*; bulk data rides as attached
//! `NetBuf` segments so the zero-copy paths can splice it without movement.

use crate::error::{need, DecodeError, Result};

/// NFSv2 procedure numbers (RFC 1094).
pub mod proc {
    /// Null procedure.
    pub const NULL: u32 = 0;
    /// Fetch file attributes.
    pub const GETATTR: u32 = 1;
    /// Look a name up in a directory.
    pub const LOOKUP: u32 = 4;
    /// Read from a file.
    pub const READ: u32 = 6;
    /// Write to a file.
    pub const WRITE: u32 = 8;
    /// Create a file.
    pub const CREATE: u32 = 9;
    /// Remove a file.
    pub const REMOVE: u32 = 10;
    /// Read directory entries.
    pub const READDIR: u32 = 16;
}

/// NFSv2 file handles are 32 opaque bytes.
pub const FH_LEN: usize = 32;
/// Encoded length of the fattr attribute block.
pub const FATTR_LEN: usize = 68;
/// NFS status: success.
pub const NFS_OK: u32 = 0;
/// NFS status: no such file or directory.
pub const NFSERR_NOENT: u32 = 2;
/// NFS status: I/O error.
pub const NFSERR_IO: u32 = 5;
/// NFS status: retryable rejection — the server is overloaded (or the
/// data is temporarily unavailable) and the client should back off and
/// retransmit. Modelled on NFSv3's `NFS3ERR_JUKEBOX`; the overload
/// control plane (DESIGN.md §15) uses it as its `RETRY_LATER` reply.
pub const NFSERR_JUKEBOX: u32 = 10008;

/// File type, as carried in fattr.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FileType {
    /// A regular file — its blocks are *regular data* to NCache.
    #[default]
    Regular,
    /// A directory — its blocks are metadata.
    Directory,
}

impl FileType {
    fn to_u32(self) -> u32 {
        match self {
            FileType::Regular => 1,
            FileType::Directory => 2,
        }
    }

    fn from_u32(v: u32) -> Result<FileType> {
        match v {
            1 => Ok(FileType::Regular),
            2 => Ok(FileType::Directory),
            _ => Err(DecodeError::Unsupported("file type")),
        }
    }
}

fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_be_bytes());
}

fn get_u32(b: &[u8], at: usize) -> u32 {
    u32::from_be_bytes(b[at..at + 4].try_into().expect("4 bytes"))
}

fn put_fh(b: &mut Vec<u8>, fh: u64) {
    b.extend_from_slice(&fh.to_be_bytes());
    b.extend_from_slice(&[0u8; FH_LEN - 8]);
}

fn get_fh(b: &[u8], at: usize) -> u64 {
    u64::from_be_bytes(b[at..at + 8].try_into().expect("8 bytes"))
}

/// NFSv2 file attributes (the fields this reproduction carries; the rest
/// of the 68-byte fattr encodes as zero).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Fattr {
    /// File type.
    pub ftype: FileType,
    /// Size in bytes.
    pub size: u32,
    /// File id (inode number).
    pub fileid: u32,
    /// Modification time, seconds.
    pub mtime: u32,
}

impl Fattr {
    /// Encodes the 68-byte fattr.
    pub fn encode_into(&self, b: &mut Vec<u8>) {
        put_u32(b, self.ftype.to_u32());
        put_u32(b, 0o644); // mode
        put_u32(b, 1); // nlink
        put_u32(b, 0); // uid
        put_u32(b, 0); // gid
        put_u32(b, self.size);
        put_u32(b, 4096); // blocksize
        put_u32(b, 0); // rdev
        put_u32(b, self.size.div_ceil(4096)); // blocks
        put_u32(b, 0); // fsid
        put_u32(b, self.fileid);
        put_u32(b, 0); // atime sec
        put_u32(b, 0); // atime usec
        put_u32(b, self.mtime);
        put_u32(b, 0); // mtime usec
        put_u32(b, self.mtime);
        put_u32(b, 0); // ctime usec
    }

    /// Decodes a 68-byte fattr from `b[at..]`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input, [`DecodeError::Unsupported`]
    /// on an unknown file type.
    pub fn decode(b: &[u8], at: usize) -> Result<Fattr> {
        need(b, at + FATTR_LEN)?;
        Ok(Fattr {
            ftype: FileType::from_u32(get_u32(b, at))?,
            size: get_u32(b, at + 20),
            fileid: get_u32(b, at + 40),
            mtime: get_u32(b, at + 52),
        })
    }
}

/// GETATTR request body: just a file handle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct GetattrArgs {
    /// Target file handle.
    pub fh: u64,
}

impl GetattrArgs {
    /// Encodes the body.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(FH_LEN);
        put_fh(&mut b, self.fh);
        b
    }

    /// Decodes the body.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input.
    pub fn decode(b: &[u8]) -> Result<GetattrArgs> {
        need(b, FH_LEN)?;
        Ok(GetattrArgs { fh: get_fh(b, 0) })
    }
}

/// LOOKUP request body: directory handle + name.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct LookupArgs {
    /// Directory to search.
    pub dir_fh: u64,
    /// Name to look up.
    pub name: String,
}

impl LookupArgs {
    /// Encodes the body (XDR string: length, bytes, pad to 4).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        put_fh(&mut b, self.dir_fh);
        put_u32(&mut b, self.name.len() as u32);
        b.extend_from_slice(self.name.as_bytes());
        while b.len() % 4 != 0 {
            b.push(0);
        }
        b
    }

    /// Decodes the body.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input, [`DecodeError::BadField`]
    /// if the name is not UTF-8.
    pub fn decode(b: &[u8]) -> Result<LookupArgs> {
        need(b, FH_LEN + 4)?;
        let len = get_u32(b, FH_LEN) as usize;
        need(b, FH_LEN + 4 + len)?;
        let name = std::str::from_utf8(&b[FH_LEN + 4..FH_LEN + 4 + len])
            .map_err(|_| DecodeError::BadField("name utf-8"))?
            .to_string();
        Ok(LookupArgs {
            dir_fh: get_fh(b, 0),
            name,
        })
    }
}

/// LOOKUP reply body: status, handle, attributes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct LookupReply {
    /// NFS status ([`NFS_OK`] on success).
    pub status: u32,
    /// Handle of the found object (valid when status is OK).
    pub fh: u64,
    /// Its attributes.
    pub attrs: Fattr,
}

impl LookupReply {
    /// Encodes the body (error replies carry only the status word).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        put_u32(&mut b, self.status);
        if self.status == NFS_OK {
            put_fh(&mut b, self.fh);
            self.attrs.encode_into(&mut b);
        }
        b
    }

    /// Decodes the body.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input.
    pub fn decode(b: &[u8]) -> Result<LookupReply> {
        need(b, 4)?;
        let status = get_u32(b, 0);
        if status != NFS_OK {
            return Ok(LookupReply {
                status,
                ..LookupReply::default()
            });
        }
        need(b, 4 + FH_LEN + FATTR_LEN)?;
        Ok(LookupReply {
            status,
            fh: get_fh(b, 4),
            attrs: Fattr::decode(b, 4 + FH_LEN)?,
        })
    }
}

/// READ request body.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ReadArgs {
    /// Target file handle.
    pub fh: u64,
    /// Byte offset to read from.
    pub offset: u32,
    /// Bytes requested.
    pub count: u32,
}

impl ReadArgs {
    /// Encodes the body.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(FH_LEN + 12);
        put_fh(&mut b, self.fh);
        put_u32(&mut b, self.offset);
        put_u32(&mut b, self.count);
        put_u32(&mut b, self.count); // totalcount (unused, RFC 1094)
        b
    }

    /// Decodes the body.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input.
    pub fn decode(b: &[u8]) -> Result<ReadArgs> {
        need(b, FH_LEN + 12)?;
        Ok(ReadArgs {
            fh: get_fh(b, 0),
            offset: get_u32(b, FH_LEN),
            count: get_u32(b, FH_LEN + 4),
        })
    }
}

/// READ reply *header*: status, attributes, and the byte count; the data
/// itself is attached as payload segments after this header.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ReadReplyHeader {
    /// NFS status.
    pub status: u32,
    /// Post-read attributes.
    pub attrs: Fattr,
    /// Number of payload bytes following the header.
    pub count: u32,
}

impl ReadReplyHeader {
    /// Encoded length of a success header.
    pub const OK_LEN: usize = 4 + FATTR_LEN + 4;

    /// Encodes the header (error replies carry only the status word).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        put_u32(&mut b, self.status);
        if self.status == NFS_OK {
            self.attrs.encode_into(&mut b);
            put_u32(&mut b, self.count);
        }
        b
    }

    /// Decodes the header.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input.
    pub fn decode(b: &[u8]) -> Result<ReadReplyHeader> {
        need(b, 4)?;
        let status = get_u32(b, 0);
        if status != NFS_OK {
            return Ok(ReadReplyHeader {
                status,
                ..ReadReplyHeader::default()
            });
        }
        need(b, Self::OK_LEN)?;
        Ok(ReadReplyHeader {
            status,
            attrs: Fattr::decode(b, 4)?,
            count: get_u32(b, 4 + FATTR_LEN),
        })
    }
}

/// WRITE request *header*: handle, offset, count; data follows as payload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct WriteArgsHeader {
    /// Target file handle.
    pub fh: u64,
    /// Byte offset to write at.
    pub offset: u32,
    /// Number of payload bytes following the header.
    pub count: u32,
}

impl WriteArgsHeader {
    /// Encoded length.
    pub const LEN: usize = FH_LEN + 16;

    /// Encodes the header.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(Self::LEN);
        put_fh(&mut b, self.fh);
        put_u32(&mut b, 0); // beginoffset (unused, RFC 1094)
        put_u32(&mut b, self.offset);
        put_u32(&mut b, 0); // totalcount (unused)
        put_u32(&mut b, self.count);
        b
    }

    /// Decodes the header.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input.
    pub fn decode(b: &[u8]) -> Result<WriteArgsHeader> {
        need(b, Self::LEN)?;
        Ok(WriteArgsHeader {
            fh: get_fh(b, 0),
            offset: get_u32(b, FH_LEN + 4),
            count: get_u32(b, FH_LEN + 12),
        })
    }
}

/// WRITE reply body: status + attributes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct WriteReply {
    /// NFS status.
    pub status: u32,
    /// Post-write attributes.
    pub attrs: Fattr,
}

impl WriteReply {
    /// Encodes the body (error replies carry only the status word).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        put_u32(&mut b, self.status);
        if self.status == NFS_OK {
            self.attrs.encode_into(&mut b);
        }
        b
    }

    /// Decodes the body.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input.
    pub fn decode(b: &[u8]) -> Result<WriteReply> {
        need(b, 4)?;
        let status = get_u32(b, 0);
        if status != NFS_OK {
            return Ok(WriteReply {
                status,
                ..WriteReply::default()
            });
        }
        Ok(WriteReply {
            status,
            attrs: Fattr::decode(b, 4)?,
        })
    }
}

/// CREATE request body: directory handle + name + (ignored) sattr.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct CreateArgs {
    /// Directory to create in.
    pub dir_fh: u64,
    /// Name of the new file.
    pub name: String,
}

/// Size of the (zeroed) sattr block trailing CREATE args.
const SATTR_LEN: usize = 32;

impl CreateArgs {
    /// Encodes the body (the sattr block encodes as zeros — the
    /// reproduction's files take default attributes).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = LookupArgs {
            dir_fh: self.dir_fh,
            name: self.name.clone(),
        }
        .encode();
        b.extend_from_slice(&[0u8; SATTR_LEN]);
        b
    }

    /// Decodes the body.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input, [`DecodeError::BadField`]
    /// on a non-UTF-8 name.
    pub fn decode(b: &[u8]) -> Result<CreateArgs> {
        let inner = LookupArgs::decode(b)?;
        need(b, inner.encode().len() + SATTR_LEN)?;
        Ok(CreateArgs {
            dir_fh: inner.dir_fh,
            name: inner.name,
        })
    }
}

/// CREATE replies are `diropres`, the same shape as [`LookupReply`].
pub type CreateReply = LookupReply;

/// REMOVE request bodies are `diropargs`, the same shape as [`LookupArgs`].
pub type RemoveArgs = LookupArgs;

/// REMOVE reply body: just the status word.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct RemoveReply {
    /// NFS status.
    pub status: u32,
}

impl RemoveReply {
    /// Encodes the body.
    pub fn encode(&self) -> Vec<u8> {
        self.status.to_be_bytes().to_vec()
    }

    /// Decodes the body.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input.
    pub fn decode(b: &[u8]) -> Result<RemoveReply> {
        need(b, 4)?;
        Ok(RemoveReply {
            status: get_u32(b, 0),
        })
    }
}

/// READDIR request body.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ReaddirArgs {
    /// Directory handle.
    pub fh: u64,
    /// Resume cookie: number of entries to skip (0 starts over).
    pub cookie: u32,
    /// Maximum reply bytes.
    pub count: u32,
}

impl ReaddirArgs {
    /// Encoded length.
    pub const LEN: usize = FH_LEN + 8;

    /// Encodes the body.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(Self::LEN);
        put_fh(&mut b, self.fh);
        put_u32(&mut b, self.cookie);
        put_u32(&mut b, self.count);
        b
    }

    /// Decodes the body.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input.
    pub fn decode(b: &[u8]) -> Result<ReaddirArgs> {
        need(b, Self::LEN)?;
        Ok(ReaddirArgs {
            fh: get_fh(b, 0),
            cookie: get_u32(b, FH_LEN),
            count: get_u32(b, FH_LEN + 4),
        })
    }
}

/// One READDIR entry.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct DirEntry {
    /// File id (inode number).
    pub fileid: u32,
    /// Entry name.
    pub name: String,
}

/// READDIR reply body.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct ReaddirReply {
    /// NFS status.
    pub status: u32,
    /// Entries in this page.
    pub entries: Vec<DirEntry>,
    /// Whether the listing is complete.
    pub eof: bool,
}

impl ReaddirReply {
    /// Encodes the body (XDR-style: a 1-marker before each entry, a
    /// 0-marker after the last, then the EOF flag).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        put_u32(&mut b, self.status);
        if self.status != NFS_OK {
            return b;
        }
        for e in &self.entries {
            put_u32(&mut b, 1);
            put_u32(&mut b, e.fileid);
            put_u32(&mut b, e.name.len() as u32);
            b.extend_from_slice(e.name.as_bytes());
            while b.len() % 4 != 0 {
                b.push(0);
            }
        }
        put_u32(&mut b, 0);
        put_u32(&mut b, u32::from(self.eof));
        b
    }

    /// Decodes the body.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input, [`DecodeError::BadField`]
    /// on a non-UTF-8 name.
    pub fn decode(b: &[u8]) -> Result<ReaddirReply> {
        need(b, 4)?;
        let status = get_u32(b, 0);
        if status != NFS_OK {
            return Ok(ReaddirReply {
                status,
                ..ReaddirReply::default()
            });
        }
        let mut entries = Vec::new();
        let mut at = 4;
        loop {
            need(b, at + 4)?;
            let marker = get_u32(b, at);
            at += 4;
            if marker == 0 {
                break;
            }
            need(b, at + 8)?;
            let fileid = get_u32(b, at);
            let len = get_u32(b, at + 4) as usize;
            at += 8;
            need(b, at + len)?;
            let name = std::str::from_utf8(&b[at..at + len])
                .map_err(|_| DecodeError::BadField("name utf-8"))?
                .to_string();
            at += len;
            while at % 4 != 0 {
                at += 1;
            }
            entries.push(DirEntry { fileid, name });
        }
        need(b, at + 4)?;
        Ok(ReaddirReply {
            status,
            entries,
            eof: get_u32(b, at) != 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::gen::*;
    use check::{prop_assert_eq, property};

    fn attrs() -> Fattr {
        Fattr {
            ftype: FileType::Regular,
            size: 123_456,
            fileid: 17,
            mtime: 1_000_000,
        }
    }

    #[test]
    fn fattr_round_trip() {
        let mut b = Vec::new();
        attrs().encode_into(&mut b);
        assert_eq!(b.len(), FATTR_LEN);
        assert_eq!(Fattr::decode(&b, 0), Ok(attrs()));
    }

    #[test]
    fn fattr_directory_round_trip() {
        let a = Fattr {
            ftype: FileType::Directory,
            ..attrs()
        };
        let mut b = Vec::new();
        a.encode_into(&mut b);
        assert_eq!(Fattr::decode(&b, 0), Ok(a));
    }

    #[test]
    fn fattr_bad_type_rejected() {
        let mut b = Vec::new();
        attrs().encode_into(&mut b);
        b[3] = 9;
        assert_eq!(Fattr::decode(&b, 0), Err(DecodeError::Unsupported("file type")));
    }

    #[test]
    fn getattr_round_trip() {
        let a = GetattrArgs { fh: 0xfeed_f00d };
        assert_eq!(GetattrArgs::decode(&a.encode()), Ok(a));
    }

    #[test]
    fn lookup_round_trip_with_padding() {
        for name in ["a", "ab", "abc", "abcd", "a-longer-name.txt"] {
            let a = LookupArgs {
                dir_fh: 1,
                name: name.to_string(),
            };
            let enc = a.encode();
            assert_eq!(enc.len() % 4, 0, "XDR padding");
            assert_eq!(LookupArgs::decode(&enc), Ok(a));
        }
    }

    #[test]
    fn lookup_reply_ok_and_error() {
        let ok = LookupReply {
            status: NFS_OK,
            fh: 9,
            attrs: attrs(),
        };
        assert_eq!(LookupReply::decode(&ok.encode()), Ok(ok));
        let err = LookupReply {
            status: NFSERR_NOENT,
            ..LookupReply::default()
        };
        let enc = err.encode();
        assert_eq!(enc.len(), 4, "error replies are status-only");
        assert_eq!(LookupReply::decode(&enc), Ok(err));
    }

    #[test]
    fn read_args_round_trip() {
        let a = ReadArgs {
            fh: 3,
            offset: 65_536,
            count: 32_768,
        };
        assert_eq!(ReadArgs::decode(&a.encode()), Ok(a));
    }

    #[test]
    fn read_reply_header_round_trip() {
        let h = ReadReplyHeader {
            status: NFS_OK,
            attrs: attrs(),
            count: 8_192,
        };
        let enc = h.encode();
        assert_eq!(enc.len(), ReadReplyHeader::OK_LEN);
        assert_eq!(ReadReplyHeader::decode(&enc), Ok(h));
        let err = ReadReplyHeader {
            status: NFSERR_IO,
            ..ReadReplyHeader::default()
        };
        assert_eq!(ReadReplyHeader::decode(&err.encode()), Ok(err));
    }

    #[test]
    fn write_round_trip() {
        let h = WriteArgsHeader {
            fh: 4,
            offset: 4_096,
            count: 4_096,
        };
        assert_eq!(h.encode().len(), WriteArgsHeader::LEN);
        assert_eq!(WriteArgsHeader::decode(&h.encode()), Ok(h));
        let r = WriteReply {
            status: NFS_OK,
            attrs: attrs(),
        };
        assert_eq!(WriteReply::decode(&r.encode()), Ok(r));
    }

    #[test]
    fn truncated_bodies() {
        assert!(GetattrArgs::decode(&[0; 31]).is_err());
        assert!(LookupArgs::decode(&[0; 35]).is_err());
        assert!(ReadArgs::decode(&[0; 43]).is_err());
        assert!(ReadReplyHeader::decode(&[]).is_err());
        assert!(WriteArgsHeader::decode(&[0; 47]).is_err());
        assert!(WriteReply::decode(&[0; 3]).is_err());
    }

    #[test]
    fn create_round_trip() {
        let a = CreateArgs {
            dir_fh: 3,
            name: "new.txt".to_string(),
        };
        let enc = a.encode();
        assert_eq!(enc.len() % 4, 0);
        assert_eq!(CreateArgs::decode(&enc), Ok(a));
        assert!(CreateArgs::decode(&enc[..enc.len() - 8]).is_err(), "sattr required");
    }

    #[test]
    fn remove_reply_round_trip() {
        let r = RemoveReply { status: NFS_OK };
        assert_eq!(RemoveReply::decode(&r.encode()), Ok(r));
        assert!(RemoveReply::decode(&[0; 3]).is_err());
    }

    #[test]
    fn readdir_args_round_trip() {
        let a = ReaddirArgs {
            fh: 0,
            cookie: 7,
            count: 4096,
        };
        assert_eq!(ReaddirArgs::decode(&a.encode()), Ok(a));
    }

    #[test]
    fn readdir_reply_round_trip() {
        let r = ReaddirReply {
            status: NFS_OK,
            entries: vec![
                DirEntry { fileid: 1, name: "a".to_string() },
                DirEntry { fileid: 22, name: "file-two".to_string() },
            ],
            eof: true,
        };
        assert_eq!(ReaddirReply::decode(&r.encode()), Ok(r));
        let empty = ReaddirReply {
            status: NFS_OK,
            entries: Vec::new(),
            eof: false,
        };
        assert_eq!(ReaddirReply::decode(&empty.encode()), Ok(empty));
        let err = ReaddirReply {
            status: NFSERR_IO,
            ..ReaddirReply::default()
        };
        assert_eq!(ReaddirReply::decode(&err.encode()), Ok(err));
    }

    property! {
        fn prop_readdir_reply_round_trip(
            names in vec_of((string_of(ALNUM_LOWER, 1..21), any_u32()), 0..20),
            eof in any_bool(),
        ) {
            let r = ReaddirReply {
                status: NFS_OK,
                entries: names
                    .into_iter()
                    .map(|(name, fileid)| DirEntry { fileid, name })
                    .collect(),
                eof,
            };
            prop_assert_eq!(ReaddirReply::decode(&r.encode()), Ok(r.clone()));
        }

        fn prop_read_args_round_trip(fh in any_u64(), off in any_u32(), cnt in any_u32()) {
            let a = ReadArgs { fh, offset: off, count: cnt };
            prop_assert_eq!(ReadArgs::decode(&a.encode()), Ok(a));
        }

        fn prop_write_header_round_trip(fh in any_u64(), off in any_u32(), cnt in any_u32()) {
            let h = WriteArgsHeader { fh, offset: off, count: cnt };
            prop_assert_eq!(WriteArgsHeader::decode(&h.encode()), Ok(h));
        }

        fn prop_lookup_round_trip(fh in any_u64(), name in string_of(FILENAME, 0..65)) {
            let a = LookupArgs { dir_fh: fh, name };
            prop_assert_eq!(LookupArgs::decode(&a.encode()), Ok(a.clone()));
        }

        fn prop_fattr_round_trip(size in any_u32(), id in any_u32(), mt in any_u32()) {
            let a = Fattr { ftype: FileType::Regular, size, fileid: id, mtime: mt };
            let mut b = Vec::new();
            a.encode_into(&mut b);
            prop_assert_eq!(Fattr::decode(&b, 0), Ok(a));
        }
    }
}
