//! Decode errors shared by all protocol modules.

use std::fmt;

/// Error produced when parsing a protocol header fails.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input was shorter than the header requires.
    Truncated {
        /// Bytes the decoder needed.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// A checksum did not verify.
    BadChecksum,
    /// A magic number, version, or fixed field had the wrong value.
    BadField(&'static str),
    /// The value is syntactically valid but not supported by this subset.
    Unsupported(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { need, have } => {
                write!(f, "truncated header: need {need} bytes, have {have}")
            }
            DecodeError::BadChecksum => write!(f, "checksum mismatch"),
            DecodeError::BadField(what) => write!(f, "invalid field: {what}"),
            DecodeError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Convenience alias used by every decoder in this crate.
pub type Result<T> = std::result::Result<T, DecodeError>;

/// Checks that `buf` holds at least `need` bytes.
pub(crate) fn need(buf: &[u8], need: usize) -> Result<()> {
    if buf.len() < need {
        Err(DecodeError::Truncated {
            need,
            have: buf.len(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            DecodeError::Truncated { need: 8, have: 3 }.to_string(),
            "truncated header: need 8 bytes, have 3"
        );
        assert_eq!(DecodeError::BadChecksum.to_string(), "checksum mismatch");
        assert_eq!(
            DecodeError::BadField("version").to_string(),
            "invalid field: version"
        );
        assert_eq!(
            DecodeError::Unsupported("opcode").to_string(),
            "unsupported: opcode"
        );
    }

    #[test]
    fn need_helper() {
        assert!(need(&[0; 4], 4).is_ok());
        assert_eq!(
            need(&[0; 3], 4),
            Err(DecodeError::Truncated { need: 4, have: 3 })
        );
    }

    #[test]
    fn error_is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(DecodeError::BadChecksum);
        assert!(e.to_string().contains("checksum"));
    }
}
