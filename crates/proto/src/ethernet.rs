//! Ethernet II framing.

use crate::error::{need, Result};

/// Length of an Ethernet II header.
pub const HEADER_LEN: usize = 14;
/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// The testbed's MTU (paper §5.2: "the default Ethernet MTU size of
/// 1500-Byte was used").
pub const MTU: usize = 1500;

/// A MAC address.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// A locally-administered address derived from a small node id, for
    /// the simulated testbed.
    pub fn from_node_id(id: u8) -> Self {
        MacAddr([0x02, 0x00, 0x00, 0x00, 0x00, id])
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            m[0], m[1], m[2], m[3], m[4], m[5]
        )
    }
}

/// An Ethernet II header.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType of the carried protocol.
    pub ethertype: u16,
}

impl EthernetHeader {
    /// An IPv4 frame header from `src` to `dst`.
    pub fn ipv4(src: MacAddr, dst: MacAddr) -> Self {
        EthernetHeader {
            dst,
            src,
            ethertype: ETHERTYPE_IPV4,
        }
    }

    /// Encodes to the 14-byte wire form.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut b = [0u8; HEADER_LEN];
        b[0..6].copy_from_slice(&self.dst.0);
        b[6..12].copy_from_slice(&self.src.0);
        b[12..14].copy_from_slice(&self.ethertype.to_be_bytes());
        b
    }

    /// Decodes from the head of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DecodeError::Truncated`] if `buf` is shorter than 14 bytes.
    pub fn decode(buf: &[u8]) -> Result<EthernetHeader> {
        need(buf, HEADER_LEN)?;
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        Ok(EthernetHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: u16::from_be_bytes([buf[12], buf[13]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DecodeError;
    use check::gen::*;
    use check::{prop_assert_eq, property};

    #[test]
    fn round_trip() {
        let h = EthernetHeader::ipv4(MacAddr::from_node_id(1), MacAddr::from_node_id(2));
        let enc = h.encode();
        assert_eq!(EthernetHeader::decode(&enc), Ok(h));
        assert_eq!(h.ethertype, ETHERTYPE_IPV4);
    }

    #[test]
    fn truncated() {
        assert_eq!(
            EthernetHeader::decode(&[0u8; 13]),
            Err(DecodeError::Truncated { need: 14, have: 13 })
        );
    }

    #[test]
    fn decode_ignores_trailing_payload() {
        let h = EthernetHeader::ipv4(MacAddr::from_node_id(9), MacAddr::from_node_id(8));
        let mut frame = h.encode().to_vec();
        frame.extend_from_slice(&[1, 2, 3]);
        assert_eq!(EthernetHeader::decode(&frame), Ok(h));
    }

    #[test]
    fn mac_display() {
        assert_eq!(
            MacAddr::from_node_id(0xAB).to_string(),
            "02:00:00:00:00:ab"
        );
    }

    property! {
        fn prop_round_trip(dst in byte_array::<6>(), src in byte_array::<6>(), et in any_u16()) {
            let h = EthernetHeader { dst: MacAddr(dst), src: MacAddr(src), ethertype: et };
            prop_assert_eq!(EthernetHeader::decode(&h.encode()), Ok(h));
        }
    }
}
