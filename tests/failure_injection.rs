//! Hostile and degenerate inputs: the servers must degrade with error
//! replies, never panic, and the caches must stay consistent afterwards.

use ncache_repro::netbuf::{NetBuf, Segment};
use ncache_repro::proto::nfs::NFS_OK;
use ncache_repro::servers::ServerMode;
use ncache_repro::testbed::khttpd_rig::{KhttpdRig, KhttpdRigParams};
use ncache_repro::testbed::nfs_rig::{NfsRig, NfsRigParams};

fn deliver_raw(rig: &mut NfsRig, bytes: Vec<u8>) -> NetBuf {
    let ledger = rig.ledgers().client.clone();
    let mut req = NetBuf::new(&ledger);
    req.append_segment(Segment::from_vec(bytes));
    rig.handle_raw(req)
}

#[test]
fn nfs_server_survives_garbage_datagrams() {
    for mode in ServerMode::ALL {
        let mut rig = NfsRig::new(mode, NfsRigParams::default());
        let fh = rig.create_file("ok", 8192);
        // Assorted garbage: empty, short, random bytes, truncated call.
        for bytes in [
            Vec::new(),
            vec![0u8; 3],
            vec![0xFF; 39],
            (0..200u16).map(|b| b as u8).collect::<Vec<u8>>(),
        ] {
            let reply = deliver_raw(&mut rig, bytes);
            assert!(reply.total_len() > 0, "{mode}: an error reply comes back");
        }
        // The server still works afterwards.
        if mode != ServerMode::Baseline {
            assert_eq!(rig.read(fh, 0, 4096), NfsRig::pattern(fh, 0, 4096), "{mode}");
        }
        assert!(rig.server_mut().stats().errors >= 4, "{mode}: errors counted");
    }
}

#[test]
fn nfs_server_rejects_truncated_bodies_per_procedure() {
    use ncache_repro::proto::rpc::RpcCall;
    let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
    rig.create_file("ok", 8192);
    // A valid RPC call header followed by a body too short for the
    // procedure, for each procedure the server speaks.
    for proc in [1u32, 4, 6, 8] {
        let mut bytes = RpcCall::nfs(77, proc).encode();
        bytes.extend_from_slice(&[0u8; 3]);
        let reply = deliver_raw(&mut rig, bytes);
        assert!(reply.total_len() > 0, "proc {proc}: error reply");
    }
    assert!(rig.server_mut().stats().errors >= 4);
}

#[test]
fn nfs_unknown_procedure_and_unknown_handle() {
    let mut rig = NfsRig::new(ServerMode::Original, NfsRigParams::default());
    rig.create_file("ok", 8192);
    // Unknown procedure number.
    let mut bytes = ncache_repro::proto::rpc::RpcCall::nfs(9, 99).encode();
    bytes.extend_from_slice(&[0u8; 64]);
    let reply = deliver_raw(&mut rig, bytes);
    assert!(reply.total_len() > 0);
    // Reads and attrs of a never-created handle error cleanly.
    let (hdr, data) = rig.read_with_header(0xDEAD, 0, 4096);
    assert_ne!(hdr.status, NFS_OK);
    assert!(data.is_empty());
    assert_ne!(rig.getattr(0xDEAD), NFS_OK);
}

#[test]
fn khttpd_survives_malformed_requests_in_every_mode() {
    for mode in ServerMode::ALL {
        let mut rig = KhttpdRig::new(mode, KhttpdRigParams::default());
        rig.publish("ok", 4096);
        let ledger = rig.ledgers().client.clone();
        for bytes in [
            b"".to_vec(),
            b"POST /x HTTP/1.0\r\n\r\n".to_vec(),
            b"GET\r\n\r\n".to_vec(),
            b"GET /ok HTTP/1.0".to_vec(), // truncated: no terminating CRLFCRLF
            b"GARBAGE".to_vec(),
            vec![0xFF; 100],
        ] {
            let mut req = NetBuf::new(&ledger);
            req.append_segment(Segment::from_vec(bytes));
            let delivered = ncache_repro::servers::stack::deliver(&req, &rig.ledgers().app);
            let response = rig.server_mut().handle_request(&delivered);
            assert!(response.total_len() > 0, "{mode}: a response (400) comes back");
        }
        assert!(rig.server_mut().stats().bad_requests >= 6, "{mode}");
        // Still serving real pages.
        let (hdr, body) = rig.get("/ok");
        assert_eq!(hdr.status, 200, "{mode}");
        if mode != ServerMode::Baseline {
            assert_eq!(body, rig.expected("ok", 4096), "{mode}");
        }
    }
}

#[test]
fn khttpd_mid_sendfile_eviction_falls_back_not_panics() {
    // An NCache too small to hold even one page: building the response
    // evicts its own earlier chunks, so by send time the placeholders no
    // longer resolve and the server must fall back to the copying path.
    let params = KhttpdRigParams {
        ncache_bytes: 2 * (4096 + 128),
        ..KhttpdRigParams::default()
    };
    for mode in ServerMode::ALL {
        let mut rig = KhttpdRig::new(mode, params);
        rig.publish("big.html", 64 << 10);
        rig.publish("other.html", 32 << 10);
        for round in 0..4 {
            for (page, len) in [("/big.html", 64u64 << 10), ("/other.html", 32u64 << 10)] {
                let (hdr, body) = rig.get(page);
                assert_eq!(hdr.status, 200, "{mode} round {round} {page}");
                assert_eq!(hdr.content_length, len);
                if mode != ServerMode::Baseline {
                    assert_eq!(
                        body,
                        rig.expected(&page[1..], len),
                        "{mode} round {round} {page}: eviction fallback serves real bytes"
                    );
                }
            }
        }
        // Requests for pages that vanish under pressure still error cleanly.
        let (hdr, _) = rig.get("/nope.html");
        assert_eq!(hdr.status, 404, "{mode}");
    }
}

#[test]
fn write_beyond_volume_capacity_errors_cleanly() {
    // A tiny volume: a huge write must produce an NFS error reply, and the
    // server keeps serving afterwards.
    let params = NfsRigParams {
        volume_blocks: 700,
        fs_cache_blocks: 64,
        inode_count: 64,
        ..NfsRigParams::default()
    };
    for mode in [ServerMode::Original, ServerMode::NCache] {
        let mut rig = NfsRig::new(mode, params);
        let fh = rig.create_file("small", 4096);
        // Write far more than the volume can hold, block by block.
        let mut failed = false;
        for blk in 0..1500u32 {
            let reply = rig.write(fh, blk * 4096, &vec![1u8; 4096]);
            if reply.status != NFS_OK {
                failed = true;
                break;
            }
        }
        assert!(failed, "{mode}: the volume must fill eventually");
        // Earlier data still reads back.
        let got = rig.read(fh, 0, 4096);
        assert_eq!(got.len(), 4096, "{mode}: server still serves");
    }
}

#[test]
fn ncache_under_extreme_memory_pressure_stays_correct() {
    // An NCache so small it can hold only two chunks: constant admission
    // failures and fallbacks, but every byte the client sees is right.
    let params = NfsRigParams {
        ncache_bytes: 2 * (4096 + 128),
        ..NfsRigParams::default()
    };
    let mut rig = NfsRig::new(ServerMode::NCache, params);
    let fh = rig.create_file("tight", 256 << 10);
    for blk in 0..64u32 {
        let got = rig.read(fh, blk * 4096, 4096);
        assert_eq!(
            got,
            NfsRig::pattern(fh, u64::from(blk) * 4096, 4096),
            "block {blk}"
        );
    }
    // Writes under the same pressure.
    for blk in (0..64u32).step_by(7) {
        let data = vec![blk as u8; 4096];
        rig.write(fh, blk * 4096, &data);
        assert_eq!(rig.read(fh, blk * 4096, 4096), data, "block {blk}");
    }
}
