//! Shape assertions for every figure in the paper's evaluation (§5.4-§5.5).
//!
//! Absolute throughput depends on the calibrated cost model; these tests
//! pin down what must hold regardless: who wins, roughly by how much, and
//! which resource is the bottleneck. Scales are kept small so the whole
//! file runs in seconds; EXPERIMENTS.md records the quick-scale numbers
//! next to the paper's.

use ncache_repro::testbed::experiments::{fig4, fig5, fig6a, fig6b, fig7, Scale};

fn tiny() -> Scale {
    Scale {
        allmiss_file: 8 << 20,
        allhit_file: 2 << 20,
        allhit_passes: 2,
        specweb_working_sets: vec![8 << 20, 16 << 20, 32 << 20],
        web_cache_bytes: 16 << 20,
        specweb_requests: 300,
        specsfs_ops: 900,
        specsfs_files: 24,
        specsfs_file_size: 256 << 10,
        overload_requests: 96,
    }
}

#[test]
fn fig4_all_miss_shape() {
    let (thr, cpu) = fig4(&tiny());
    for &req_kb in &[16.0, 32.0] {
        let orig = thr.get(req_kb, "original").expect("cell");
        let nc = thr.get(req_kb, "ncache").expect("cell");
        let base = thr.get(req_kb, "baseline").expect("cell");
        // Paper: 29-36 % gain at ≥16 KB, NCache similar to baseline.
        let gain = nc / orig - 1.0;
        assert!(
            (0.15..0.70).contains(&gain),
            "all-miss gain at {req_kb} KB = {gain:.2}"
        );
        assert!(base >= nc * 0.95, "baseline at least matches NCache");
        // The original's server CPU is pinned; NCache's falls below it.
        let cpu_orig = cpu.get(req_kb, "original").expect("cell");
        let cpu_nc = cpu.get(req_kb, "ncache").expect("cell");
        assert!(cpu_orig > 85.0, "original CPU saturated: {cpu_orig}");
        assert!(cpu_nc < cpu_orig, "NCache relieves the server CPU");
    }
    // CPU utilization of the zero-copy builds falls as requests grow.
    let nc4 = cpu.get(4.0, "ncache").expect("cell");
    let nc32 = cpu.get(32.0, "ncache").expect("cell");
    assert!(nc32 < nc4, "NCache CPU decreases with request size");
}

#[test]
fn fig5_all_hit_shape() {
    let (cpu1, thr2) = fig5(&tiny());
    // (a) one NIC: the original's CPU saturates throughout; the zero-copy
    // builds' utilization falls with request size once the link binds.
    for &req_kb in &[4.0, 8.0, 16.0, 32.0] {
        let orig = cpu1.get(req_kb, "original").expect("cell");
        assert!(orig > 95.0, "original saturated at {req_kb} KB: {orig}");
    }
    let nc32 = cpu1.get(32.0, "ncache").expect("cell");
    let base32 = cpu1.get(32.0, "baseline").expect("cell");
    assert!(nc32 < 90.0, "NCache CPU relieved at 32 KB: {nc32}");
    assert!(base32 < nc32, "baseline saves even more CPU");

    // (b) two NICs, CPU-bound: the paper's headline — +92 % for NCache,
    // +143 % for the ideal baseline at 32 KB; original flattens after 8 KB.
    let orig8 = thr2.get(8.0, "original").expect("cell");
    let orig32 = thr2.get(32.0, "original").expect("cell");
    assert!(
        orig32 < orig8 * 1.45,
        "original saturates: {orig8} → {orig32}"
    );
    let nc32t = thr2.get(32.0, "ncache").expect("cell");
    let base32t = thr2.get(32.0, "baseline").expect("cell");
    let gain_nc = nc32t / orig32 - 1.0;
    let gain_base = base32t / orig32 - 1.0;
    assert!(
        (0.6..1.4).contains(&gain_nc),
        "NCache all-hit gain at 32 KB = {gain_nc:.2} (paper: 0.92)"
    );
    assert!(
        (1.0..1.9).contains(&gain_base),
        "baseline all-hit gain at 32 KB = {gain_base:.2} (paper: 1.43)"
    );
    // NCache grows continuously with request size.
    let nc4 = thr2.get(4.0, "ncache").expect("cell");
    let nc16 = thr2.get(16.0, "ncache").expect("cell");
    assert!(nc4 < nc16 && nc16 < nc32t, "NCache keeps growing");
}

#[test]
fn fig6a_specweb_shape() {
    let scale = tiny();
    let thr = fig6a(&scale);
    let ws: Vec<f64> = thr.xs();
    for &w in &ws {
        let orig = thr.get(w, "original").expect("cell");
        let nc = thr.get(w, "ncache").expect("cell");
        let base = thr.get(w, "baseline").expect("cell");
        // Paper: 10-20 % NCache gain, larger for the baseline.
        assert!(nc > orig, "NCache wins at {w} MB: {nc} vs {orig}");
        assert!(base > orig, "baseline wins at {w} MB");
    }
    // Throughput drops for every build as the working set outgrows the
    // caches.
    for series in ["original", "ncache", "baseline"] {
        let first = thr.get(ws[0], series).expect("cell");
        let last = thr.get(*ws.last().expect("non-empty"), series).expect("cell");
        assert!(
            last < first,
            "{series}: throughput must fall with working set ({first} → {last})"
        );
    }
}

#[test]
fn fig6b_khttpd_request_size_shape() {
    let thr = fig6b(&tiny());
    // Gain grows with request size (paper: ~8 % at 16 KB → ~47 % at 128 KB).
    let gain = |req: f64| {
        thr.get(req, "ncache").expect("cell") / thr.get(req, "original").expect("cell") - 1.0
    };
    let g16 = gain(16.0);
    let g128 = gain(128.0);
    assert!(g16 > 0.0, "NCache wins at 16 KB: {g16:.2}");
    assert!(
        g128 > g16 + 0.10,
        "gain grows with request size: {g16:.2} → {g128:.2}"
    );
    assert!(
        (0.2..0.7).contains(&g128),
        "gain at 128 KB = {g128:.2} (paper: 0.47)"
    );
    // The ideal baseline bounds NCache from above.
    for &req in &[16.0, 32.0, 64.0, 128.0] {
        assert!(
            thr.get(req, "baseline").expect("cell") >= thr.get(req, "ncache").expect("cell"),
            "baseline ≥ NCache at {req} KB"
        );
    }
}

#[test]
fn fig7_specsfs_shape() {
    let table = fig7(&tiny());
    for &pct in &[30.0, 45.0, 60.0, 75.0] {
        let orig = table.get(pct, "original").expect("cell");
        let nc = table.get(pct, "ncache").expect("cell");
        // Paper: NCache consistently above the original (16-19 %).
        assert!(
            nc > orig * 0.98,
            "NCache at {pct}% data ops: {nc:.0} vs {orig:.0}"
        );
    }
    // The gain is larger when regular-data operations dominate.
    let gain_lo = table.get(30.0, "ncache").expect("cell")
        / table.get(30.0, "original").expect("cell");
    let gain_hi = table.get(75.0, "ncache").expect("cell")
        / table.get(75.0, "original").expect("cell");
    assert!(
        gain_hi > gain_lo - 0.02,
        "gain should not shrink as data ops grow: {gain_lo:.2} → {gain_hi:.2}"
    );
}
