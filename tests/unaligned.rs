//! Unaligned requests under NCache: a partial-block slice cannot carry a
//! key stamp, so these requests must be *materialized* from the
//! network-centric cache — and the bytes must always be right.

use ncache_repro::proto::nfs::NFS_OK;
use ncache_repro::servers::ServerMode;
use ncache_repro::testbed::nfs_rig::{NfsRig, NfsRigParams};

#[test]
fn unaligned_reads_return_real_bytes() {
    for mode in [ServerMode::Original, ServerMode::NCache] {
        let mut rig = NfsRig::new(mode, NfsRigParams::default());
        let fh = rig.create_file("u", 64 << 10);
        for &(off, len) in &[
            (1u32, 100u32),
            (100, 1000),
            (4095, 2),          // straddles a block boundary
            (4097, 8192),       // spans three blocks, both ends unaligned
            (63 << 10, 3 << 10), // clipped near EOF, unaligned start
            (2048, 60 << 10),   // long unaligned read
        ] {
            let got = rig.read(fh, off, len);
            let expect_len = ((64u64 << 10) - u64::from(off)).min(u64::from(len)) as usize;
            assert_eq!(got.len(), expect_len, "{mode}: ({off},{len})");
            assert_eq!(
                got,
                NfsRig::pattern(fh, u64::from(off), expect_len),
                "{mode}: read({off}, {len})"
            );
        }
    }
}

#[test]
fn unaligned_reads_after_writes_see_fresh_data() {
    let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
    let fh = rig.create_file("u", 32 << 10);
    // Aligned write through the FHO cache, then an unaligned read into it.
    let fresh = vec![7u8; 8192];
    assert_eq!(rig.write(fh, 0, &fresh).status, NFS_OK);
    let got = rig.read(fh, 100, 1000);
    assert_eq!(got, vec![7u8; 1000], "materialization resolves FHO first");
    // And straddling the fresh/old boundary.
    let got = rig.read(fh, 8192 - 500, 1000);
    let mut expect = vec![7u8; 500];
    expect.extend_from_slice(&NfsRig::pattern(fh, 8192, 500));
    assert_eq!(got, expect);
}

#[test]
fn unaligned_writes_merge_correctly() {
    for mode in [ServerMode::Original, ServerMode::NCache] {
        let mut rig = NfsRig::new(mode, NfsRigParams::default());
        let fh = rig.create_file("w", 32 << 10);
        // An unaligned overwrite in the middle of block 1.
        let patch = vec![0xEEu8; 1000];
        assert_eq!(rig.write(fh, 4196, &patch).status, NFS_OK, "{mode}");
        // The patched range reads back, and its surroundings are intact.
        assert_eq!(rig.read(fh, 4196, 1000), patch, "{mode}: patch");
        assert_eq!(
            rig.read(fh, 4096, 100),
            NfsRig::pattern(fh, 4096, 100),
            "{mode}: before patch"
        );
        assert_eq!(
            rig.read(fh, 5196, 1000),
            NfsRig::pattern(fh, 5196, 1000),
            "{mode}: after patch"
        );
        // A boundary-straddling unaligned write.
        let patch2 = vec![0xDDu8; 6000];
        assert_eq!(rig.write(fh, 8000, &patch2).status, NFS_OK, "{mode}");
        assert_eq!(rig.read(fh, 8000, 6000), patch2, "{mode}: straddle");
        assert_eq!(
            rig.read(fh, 7000, 1000),
            NfsRig::pattern(fh, 7000, 1000),
            "{mode}: prefix intact"
        );
        // File size unchanged by interior writes.
        let (hdr, _) = rig.read_with_header(fh, 0, 4096);
        assert_eq!(hdr.attrs.size, 32 << 10, "{mode}: size preserved");
        // Flush everything and verify the whole file end to end.
        rig.server_mut().fs_mut().sync().expect("sync");
        let mut expect = NfsRig::pattern(fh, 0, 32 << 10);
        expect[4196..5196].copy_from_slice(&patch);
        expect[8000..14000].copy_from_slice(&patch2);
        assert_eq!(rig.read(fh, 0, 32 << 10), expect, "{mode}: whole file");
    }
}

#[test]
fn unaligned_write_extends_file_to_true_end() {
    let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
    let fh = rig.create_file("grow", 4096);
    // Write past EOF from an unaligned offset.
    let tail = vec![0xABu8; 3000];
    assert_eq!(rig.write(fh, 5000, &tail).status, NFS_OK);
    let (hdr, _) = rig.read_with_header(fh, 0, 16);
    assert_eq!(hdr.attrs.size, 8000, "size is byte-accurate, not block-rounded");
    assert_eq!(rig.read(fh, 5000, 3000), tail);
    // The gap between old EOF and the write reads as zeros.
    assert_eq!(rig.read(fh, 4096, 904), vec![0u8; 904]);
}
