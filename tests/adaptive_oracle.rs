//! The adaptive cache split against its differential oracles.
//!
//! Four batteries prove the ghost-LRU controller correct without ever
//! trusting its own bookkeeping:
//!
//! - **Frozen is unobservable.** A rig with
//!   [`SplitConfig::static_split`] installed must be byte-for-byte
//!   identical to a rig with no controller at all — on a warm
//!   no-eviction workload *and* on a cold eviction-heavy one where the
//!   ghost tails actively record and probe. This also pins the parallel
//!   engine's round-synchronized path (taken whenever a controller is
//!   installed) to the free-running path it replaces.
//! - **Quiescent dynamic reconciles with the sequential oracle.** A
//!   live controller on a warmed workload ticks on every epoch boundary
//!   but sees zero ghost signal, so it must never resize — and the
//!   parallel engine must reproduce the sequential engine exactly at
//!   every thread count, shard count, and under link loss (where the
//!   inline single-threaded parallel run is the reference, as in
//!   `concurrent_oracle`).
//! - **Resizing runs are self-consistent.** A cold cyclic scan with
//!   per-lane disjoint regions drives real ghost hits and real quota
//!   moves. Tick placement in op-rounds is engine-specific (the
//!   sequential engine's round rule can fire a boundary while a fast
//!   session is already past it; the parallel engine barriers), so each
//!   engine is compared against itself: parallel across thread counts,
//!   sequential across shard counts — byte-exact, resizes included.
//! - **The windowed signal tracks phase shifts.** At rig level, a
//!   workload phase change must show up in the controller's per-epoch
//!   window within two epochs, even while the cumulative hit ratio
//!   still remembers the old phase.

use ncache_repro::ncache::adaptive::QUOTA_BLOCK;
use ncache_repro::ncache::SplitConfig;
use ncache_repro::servers::ServerMode;
use ncache_repro::sim::FaultSpec;
use ncache_repro::testbed::executor;
use ncache_repro::testbed::nfs_rig::{NfsRig, NfsRigParams};
use ncache_repro::testbed::runner::DriverOp;
use ncache_repro::testbed::sessions::{
    run_nfs_sessions, run_nfs_sessions_parallel, SessionsOptions, SessionsResult,
};

const SPAN: u32 = 16 << 10;
const SEED: u64 = 0xADA7;

// --- warm workload: ample caches, nothing evicts mid-run ---------------

const WARM_FILE: u64 = 1 << 20;
const WARM_LANES: usize = 6;

/// A dynamic controller that ticks every other op-round; on the warm
/// workload both ghosts stay silent, so every tick is a pure read.
fn warm_config() -> SplitConfig {
    SplitConfig {
        epoch_ops: 2,
        ..SplitConfig::adaptive()
    }
}

fn warm_build(mode: ServerMode, shards: usize, spec: Option<&FaultSpec>) -> (NfsRig, u64) {
    let params = NfsRigParams {
        shards,
        ..NfsRigParams::default()
    };
    let mut rig = match spec {
        Some(spec) => NfsRig::new_faulted(mode, params, spec, 0xC0FFEE),
        None => NfsRig::new(mode, params),
    };
    let fh = rig.create_file("oracle", WARM_FILE);
    let mut off = 0u64;
    while off < WARM_FILE {
        rig.read(fh, off as u32, 64 << 10);
        off += 64 << 10;
    }
    (rig, fh)
}

/// Reads in the read-only upper half, one write to a private block run,
/// a getattr — the commutativity discipline from `concurrent_oracle`.
fn warm_sessions(fh: u64) -> Vec<Vec<DriverOp>> {
    (0..WARM_LANES)
        .map(|lane| {
            let mut ops = Vec::new();
            for k in 0..4 {
                let slot = ((lane * 7 + k * 3) % 28) as u32;
                ops.push(DriverOp::Read {
                    fh,
                    offset: (WARM_FILE / 2) as u32 + slot * SPAN,
                    len: SPAN,
                });
            }
            ops.push(DriverOp::Write {
                fh,
                offset: lane as u32 * (2 * SPAN),
                len: SPAN,
            });
            ops.push(DriverOp::Getattr { fh });
            ops
        })
        .collect()
}

fn warm_readback(fh: u64) -> Vec<(u64, u32)> {
    let mut spans = Vec::new();
    for lane in 0..WARM_LANES as u32 {
        spans.push((fh, lane * (2 * SPAN)));
    }
    for slot in 0..4u32 {
        spans.push((fh, (WARM_FILE / 2) as u32 + slot * SPAN));
    }
    spans
}

// --- cold workload: cyclic scan over per-lane disjoint regions ---------

const COLD_LANES: usize = 4;
/// Spans per lane region; the re-read gap (one full cycle) dwarfs the
/// eviction lag at every capacity the controller can reach, so each
/// read misses and each ghost probe hits deterministically, independent
/// of how concurrent lanes interleave within a round.
const COLD_SPANS: u32 = 32;
/// Two full cycles: cycle one populates the ghosts, cycle two hits them.
const COLD_OPS: usize = 64;
const COLD_FILE: u64 = (COLD_LANES as u64) * (COLD_SPANS as u64) * SPAN as u64;

/// A small NCache pool under an oversized FS cache, a large ghost (no
/// displacement over the whole run), a low threshold. Every FS-block
/// miss pairs with an NCache-chunk miss on this rig, so the signal
/// asymmetry is structural instead: the FS cache holds the whole file
/// and never evicts (its ghost stays silent) while the NCache churns,
/// and cycle two's NCache ghost hits move quota toward the NCache
/// every epoch.
fn cold_config() -> SplitConfig {
    SplitConfig {
        dynamic: true,
        epoch_ops: 8,
        step_blocks: 16,
        hysteresis: 1,
        cooldown_epochs: 1,
        min_fs_blocks: 16,
        min_ncache_bytes: 16 * QUOTA_BLOCK,
        ghost_blocks: 4096,
    }
}

fn cold_build(shards: usize, cfg: Option<SplitConfig>) -> (NfsRig, u64) {
    let params = NfsRigParams {
        // Holds the whole scan (512 file blocks) even after donating
        // quota, so the FS cache never evicts mid-run: insert-overflow
        // evictions inside a round would make hit/miss and writeback
        // attribution schedule-dependent.
        fs_cache_blocks: 1024,
        ncache_bytes: 256 << 10,
        // No prefetch: a block's residency must depend only on its own
        // stamped insertions and evictions, never on a neighbour's.
        read_ahead_blocks: 0,
        shards,
        ..NfsRigParams::default()
    };
    let mut rig = NfsRig::new(ServerMode::NCache, params);
    // Sparse: blocks stay clean (no writeback IO, no dirty evictions)
    // and nothing pre-populates the NCache's LBN half.
    let fh = rig.create_sparse_file("cold", COLD_FILE);
    if let Some(cfg) = cfg {
        rig.enable_adaptive(cfg);
    }
    (rig, fh)
}

fn cold_sessions(fh: u64) -> Vec<Vec<DriverOp>> {
    (0..COLD_LANES)
        .map(|lane| {
            let base = lane as u32 * COLD_SPANS * SPAN;
            (0..COLD_OPS)
                .map(|k| DriverOp::Read {
                    fh,
                    offset: base + (k as u32 % COLD_SPANS) * SPAN,
                    len: SPAN,
                })
                .collect()
        })
        .collect()
}

fn cold_readback(fh: u64) -> Vec<(u64, u32)> {
    (0..COLD_LANES as u32)
        .map(|lane| (fh, lane * COLD_SPANS * SPAN))
        .collect()
}

// --- observation and reconciliation ------------------------------------

/// Everything the oracle reconciles after a run. A dynamic controller
/// reports its quota, tick, resize, and ghost-hit counters into the
/// metrics report, so `report` equality covers controller state too.
struct Outcome {
    result: SessionsResult,
    report: String,
    cache_chunks: usize,
    cache_bytes: u64,
    file_bytes: Vec<Vec<u8>>,
}

fn observe(mut rig: NfsRig, result: SessionsResult, readback: &[(u64, u32)]) -> Outcome {
    let report = rig.metrics_report().render();
    let (cache_chunks, cache_bytes) = rig.module().map_or((0, 0), |m| {
        let cache = m.borrow().cache_handle();
        (cache.len(), cache.pinned_bytes())
    });
    let file_bytes = readback
        .iter()
        .map(|&(fh, off)| rig.read(fh, off, SPAN))
        .collect();
    Outcome {
        result,
        report,
        cache_chunks,
        cache_bytes,
        file_bytes,
    }
}

fn assert_reconciled(oracle: &Outcome, got: &Outcome, what: &str) {
    assert_eq!(oracle.result, got.result, "{what}: SessionsResult");
    assert_eq!(oracle.report, got.report, "{what}: merged metrics report");
    assert_eq!(oracle.cache_chunks, got.cache_chunks, "{what}: cache chunks");
    assert_eq!(oracle.cache_bytes, got.cache_bytes, "{what}: cache bytes");
    assert_eq!(oracle.file_bytes, got.file_bytes, "{what}: file bytes");
}

/// (ticks, resizes, fs quota in blocks, NCache quota in bytes) — the
/// controller fingerprint compared across self-consistency legs.
fn controller_state(rig: &NfsRig) -> Option<(u64, u64, u64, u64)> {
    rig.adaptive_controller()
        .map(|c| (c.ticks(), c.resizes(), c.fs_blocks(), c.ncache_bytes()))
}

// --- frozen controller: byte-for-byte unobservable ---------------------

#[test]
fn frozen_controller_is_unobservable_sequentially() {
    for shards in [1usize, 8] {
        // Warm leg: no evictions, the ghosts never even record.
        let (rig, fh) = warm_build(ServerMode::NCache, shards, None);
        let (rig, result) = run_nfs_sessions(rig, warm_sessions(fh), &SessionsOptions::default());
        let plain = observe(rig, result, &warm_readback(fh));

        let (mut rig, fh) = warm_build(ServerMode::NCache, shards, None);
        rig.enable_adaptive(SplitConfig::static_split());
        let (rig, result) = run_nfs_sessions(rig, warm_sessions(fh), &SessionsOptions::default());
        assert!(rig.adaptive_controller().is_some());
        let frozen = observe(rig, result, &warm_readback(fh));
        assert_reconciled(&plain, &frozen, &format!("warm/frozen/shards={shards}"));

        // Cold leg: the NCache churns, its ghost tail records every
        // victim and scores every revisit — and none of it may leak
        // into any observable.
        let (rig, fh) = cold_build(shards, None);
        let (rig, result) = run_nfs_sessions(rig, cold_sessions(fh), &SessionsOptions::default());
        let plain = observe(rig, result, &cold_readback(fh));

        let (rig, fh) = cold_build(
            shards,
            Some(SplitConfig {
                dynamic: false,
                ..cold_config()
            }),
        );
        let (rig, result) = run_nfs_sessions(rig, cold_sessions(fh), &SessionsOptions::default());
        let state = controller_state(&rig).expect("frozen controller installed");
        assert_eq!(state.1, 0, "frozen controller must never resize");
        assert!(state.0 > 0, "frozen controller still ticks");
        let frozen = observe(rig, result, &cold_readback(fh));
        assert_reconciled(&plain, &frozen, &format!("cold/frozen/shards={shards}"));
    }
}

#[test]
fn frozen_controller_is_unobservable_in_parallel() {
    // Installing any controller reroutes the parallel engine onto the
    // round-synchronized path; on the race-free warm workload it must
    // reproduce the free-running path byte for byte.
    for shards in [1usize, 8] {
        let (rig, fh) = warm_build(ServerMode::NCache, shards, None);
        let (rig, result) = run_nfs_sessions_parallel(
            rig,
            warm_sessions(fh),
            &SessionsOptions::default(),
            2,
            SEED,
        );
        let plain = observe(rig, result, &warm_readback(fh));

        let (mut rig, fh) = warm_build(ServerMode::NCache, shards, None);
        rig.enable_adaptive(SplitConfig::static_split());
        let (rig, result) = run_nfs_sessions_parallel(
            rig,
            warm_sessions(fh),
            &SessionsOptions::default(),
            2,
            SEED,
        );
        let frozen = observe(rig, result, &warm_readback(fh));
        assert_reconciled(&plain, &frozen, &format!("parallel/frozen/shards={shards}"));
    }
}

// --- quiescent dynamic controller vs the sequential oracle -------------

fn quiescent_grid() -> Vec<(ServerMode, usize)> {
    vec![
        (ServerMode::Original, 1),
        (ServerMode::NCache, 1),
        (ServerMode::NCache, 8),
    ]
}

#[test]
fn quiescent_dynamic_runs_reconcile_against_the_sequential_oracle() {
    let max = executor::thread_count(None).max(3);
    for (mode, shards) in quiescent_grid() {
        let (mut rig, fh) = warm_build(mode, shards, None);
        rig.enable_adaptive(warm_config());
        let (rig, result) = run_nfs_sessions(rig, warm_sessions(fh), &SessionsOptions::default());
        let state = controller_state(&rig).expect("controller installed");
        assert_eq!(state.0, 3, "{mode:?}: six ops at epoch_ops=2 tick thrice");
        assert_eq!(state.1, 0, "{mode:?}: zero ghost signal never resizes");
        let oracle = observe(rig, result, &warm_readback(fh));

        for threads in [1, 2, max] {
            let (mut rig, fh) = warm_build(mode, shards, None);
            rig.enable_adaptive(warm_config());
            let (rig, result) = run_nfs_sessions_parallel(
                rig,
                warm_sessions(fh),
                &SessionsOptions::default(),
                threads,
                SEED,
            );
            assert_eq!(
                controller_state(&rig),
                Some(state),
                "{mode:?}/shards={shards}/threads={threads}: controller fingerprint"
            );
            let got = observe(rig, result, &warm_readback(fh));
            assert_reconciled(
                &oracle,
                &got,
                &format!("{mode:?}/shards={shards}/threads={threads}"),
            );
        }
    }
}

#[test]
fn faulted_dynamic_runs_reconcile_across_thread_counts() {
    // Lane fault plans are seed-derived per lane, so the faulted legs
    // compare the parallel engine against itself; the inline
    // single-threaded run is the reference.
    let spec = FaultSpec {
        loss: 0.02,
        ..FaultSpec::default()
    };
    let max = executor::thread_count(None).max(3);
    for shards in [1usize, 8] {
        let run = |threads: usize| {
            let (mut rig, fh) = warm_build(ServerMode::NCache, shards, Some(&spec));
            rig.enable_adaptive(warm_config());
            let (rig, result) = run_nfs_sessions_parallel(
                rig,
                warm_sessions(fh),
                &SessionsOptions::default(),
                threads,
                SEED,
            );
            let state = controller_state(&rig);
            (observe(rig, result, &warm_readback(fh)), state)
        };
        let (inline, inline_state) = run(1);
        assert_eq!(inline_state.map(|s| s.1), Some(0), "no resizes under loss");
        for threads in [2, max] {
            let (got, state) = run(threads);
            assert_eq!(state, inline_state, "loss/shards={shards}/threads={threads}");
            assert_reconciled(
                &inline,
                &got,
                &format!("loss/shards={shards}/threads={threads}"),
            );
        }
    }
}

// --- cold leg: real resizes, engine self-consistency -------------------

#[test]
fn resizing_parallel_runs_reconcile_across_thread_counts() {
    let max = executor::thread_count(None).max(3);
    for shards in [1usize, 8] {
        let run = |threads: usize| {
            let (rig, fh) = cold_build(shards, Some(cold_config()));
            let (rig, result) = run_nfs_sessions_parallel(
                rig,
                cold_sessions(fh),
                &SessionsOptions::default(),
                threads,
                SEED,
            );
            let state = controller_state(&rig).expect("controller installed");
            (observe(rig, result, &cold_readback(fh)), state)
        };
        let (inline, inline_state) = run(1);
        assert!(
            inline_state.1 > 0,
            "cold scan must drive real resizes, got {inline_state:?}"
        );
        assert!(
            inline_state.2 < 1024 && inline_state.3 > 256 << 10,
            "quota must have moved toward the NCache: {inline_state:?}"
        );
        for threads in [2, max] {
            let (got, state) = run(threads);
            assert_eq!(state, inline_state, "cold/shards={shards}/threads={threads}");
            assert_reconciled(
                &inline,
                &got,
                &format!("cold/shards={shards}/threads={threads}"),
            );
        }
    }
}

#[test]
fn resizing_sequential_runs_are_shard_invariant() {
    let run = |shards: usize| {
        let (rig, fh) = cold_build(shards, Some(cold_config()));
        let (rig, result) = run_nfs_sessions(rig, cold_sessions(fh), &SessionsOptions::default());
        let state = controller_state(&rig).expect("controller installed");
        (observe(rig, result, &cold_readback(fh)), state)
    };
    let (one, one_state) = run(1);
    assert!(one_state.1 > 0, "cold scan must resize: {one_state:?}");
    let (eight, eight_state) = run(8);
    assert_eq!(one_state, eight_state, "controller fingerprint across shards");
    assert_reconciled(&one, &eight, "cold/sequential shards 1 vs 8");
}

// --- the windowed signal tracks a phase shift --------------------------

#[test]
fn phase_shift_registers_in_the_windowed_signal_within_two_epochs() {
    let (mut rig, hot) = warm_build(ServerMode::NCache, 1, None);
    rig.enable_adaptive(SplitConfig {
        epoch_ops: 8,
        ..SplitConfig::adaptive()
    });
    // Phase A: 32 rounds of pure re-reads of the warmed file — every
    // lookup hits the NCache, and the last epoch's window says so.
    let lanes = 4usize;
    let phase_a: Vec<Vec<DriverOp>> = (0..lanes)
        .map(|lane| {
            (0..32u32)
                .map(|k| DriverOp::Read {
                    fh: hot,
                    offset: ((lane as u32 * 8 + k % 8) % 32) * SPAN,
                    len: SPAN,
                })
                .collect()
        })
        .collect();
    let (mut rig, _) = run_nfs_sessions(rig, phase_a, &SessionsOptions::default());
    let window = rig.adaptive_controller().expect("controller").window();
    assert_eq!(
        window.nc_hit_permille(),
        1000,
        "phase A window is all NCache hits: {window:?}"
    );
    assert_eq!(window.nc_misses, 0, "phase A window has no misses");

    // Phase B: sixteen rounds — exactly two epochs — of never-repeated
    // reads from a fresh sparse file (a written file would pre-populate
    // the NCache's LBN half and keep hitting via remap). The
    // *cumulative* NCache hit ratio still remembers phase A, but the
    // window must fill with misses.
    let cold = rig.create_sparse_file("shifted", 1 << 20);
    let phase_b: Vec<Vec<DriverOp>> = (0..lanes)
        .map(|lane| {
            (0..16u32)
                .map(|k| DriverOp::Read {
                    fh: cold,
                    offset: (lane as u32 * 16 + k) * SPAN,
                    len: SPAN,
                })
                .collect()
        })
        .collect();
    let (rig, _) = run_nfs_sessions(rig, phase_b, &SessionsOptions::default());
    let ctl = rig.adaptive_controller().expect("controller");
    let window = ctl.window();
    // Every miss op also scores assembly hits on the chunks it just
    // inserted, so even an all-miss epoch floors near 500‰ rather than
    // zero. The claim under test: the *window* has dropped to that
    // floor — a full epoch of misses deep — while the *cumulative*
    // ratio still sits a phase above it.
    assert!(
        window.nc_hit_permille() <= 600,
        "two epochs after the shift the window has collapsed: {window:?}"
    );
    assert!(
        window.nc_misses >= 64,
        "the window is full of phase-B misses: {window:?}"
    );
    let module = rig.module().expect("NCache build");
    let stats = module.borrow().stats();
    let cumulative = stats.hits * 1000 / stats.lookups;
    assert!(
        cumulative >= window.nc_hit_permille() + 100,
        "the cumulative ratio still remembers phase A: \
         cumulative {cumulative}‰ vs window {:?}",
        window
    );
}
