//! Figure 3 of the paper, executed: "Typical life time of a data block
//! inside an NFS server", asserted state by state.
//!
//! 1. Incoming data from the storage server is put in the **LBN cache**;
//!    a logical copy (placeholder) lives in the file-system cache.
//! 2. NFS replies are serviced from the network-centric cache
//!    (substitution).
//! 3. An NFS write produces a dirty block cached under **FHO** indexing;
//!    the placeholder in the FS cache now carries the FHO key.
//! 4. Flushing the dirty FS buffer **remaps** the FHO entry to an LBN
//!    entry (overwriting the stale one) and sends the fresh bytes to the
//!    storage server.
//! 5. Subsequent reads are served from the remapped LBN entry.

use ncache_repro::netbuf::key::{Fho, FileHandle, KeyStamp, Lbn};
use ncache_repro::proto::nfs::NFS_OK;
use ncache_repro::servers::ServerMode;
use ncache_repro::testbed::nfs_rig::{NfsRig, NfsRigParams};

#[test]
fn figure3_block_lifetime() {
    let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
    let fh = rig.create_sparse_file("life", 16 << 10);
    rig.getattr(fh); // warm metadata so the states below are purely data
    let module = rig.module().expect("ncache build");

    // --- State 1: first read misses; the block arrives from the storage
    // server and lands in the LBN cache.
    let original = rig.read(fh, 0, 4096);
    assert_eq!(original, rig.expected_sparse(fh, 0, 4096));
    let lbn = Lbn(
        rig.server_mut()
            .fs_mut()
            .block_lbn(ncache_repro::servers::nfs::fh_to_ino(fh), 0)
            .expect("file exists")
            .expect("allocated"),
    );
    assert!(
        module.borrow().cache_contains_lbn(lbn),
        "state 1: block resident in the LBN cache"
    );
    assert!(
        !module.borrow_mut().cache_mut().is_dirty(lbn.into()),
        "state 1: clean (it matches storage)"
    );
    // The FS cache holds a stamped placeholder, not the data.
    let blocks = rig
        .server_mut()
        .fs_mut()
        .read_logical(ncache_repro::servers::nfs::fh_to_ino(fh), 0, 4096)
        .expect("readable");
    let stamp = KeyStamp::decode(blocks[0].seg.as_slice()).expect("placeholder");
    assert_eq!(stamp.lbn, Some(lbn), "state 1: FS cache holds the key");

    // --- State 2: a repeat read is serviced from the network-centric
    // cache by substitution, zero copies.
    let before = rig.ledgers().app.snapshot();
    let again = rig.read(fh, 0, 4096);
    assert_eq!(again, original);
    let d = rig.ledgers().app.snapshot().delta_since(&before);
    assert_eq!(d.payload_copies, 0, "state 2: served without copying");

    // --- State 3: an NFS write dirties the block under FHO indexing.
    let fresh = vec![0xF5u8; 4096];
    assert_eq!(rig.write(fh, 0, &fresh).status, NFS_OK);
    let fho = Fho::new(FileHandle(fh), 0);
    assert!(
        module.borrow().cache_contains_fho(fho),
        "state 3: dirty block cached under FHO"
    );
    assert!(
        module.borrow_mut().cache_mut().is_dirty(fho.into()),
        "state 3: the FHO entry is dirty"
    );
    // Freshness: reads now come from the FHO entry, not the stale LBN one.
    assert_eq!(rig.read(fh, 0, 4096), fresh, "state 3: FHO consulted first");

    // --- State 4: the flush remaps FHO → LBN, overwriting the stale LBN
    // entry, and pushes the bytes to the storage server.
    let remaps_before = module.borrow().stats().remaps;
    rig.server_mut().fs_mut().sync().expect("sync");
    assert!(
        module.borrow().stats().remaps > remaps_before,
        "state 4: a remap happened"
    );
    assert!(
        !module.borrow().cache_contains_fho(fho),
        "state 4: the FHO entry moved away"
    );
    assert!(
        module.borrow().cache_contains_lbn(lbn),
        "state 4: ...into the LBN cache"
    );
    assert_eq!(
        module.borrow_mut().cache_mut().chunk_bytes(lbn.into()),
        Some(fresh.clone()),
        "state 4: the LBN entry holds the FRESH bytes (stale copy overwritten)"
    );
    assert_eq!(
        rig.target().borrow().block_contents(lbn.0),
        fresh,
        "state 4: storage has the fresh bytes"
    );

    // --- State 5: subsequent reads serve the remapped entry.
    let before = rig.ledgers().app.snapshot();
    assert_eq!(rig.read(fh, 0, 4096), fresh);
    let d = rig.ledgers().app.snapshot().delta_since(&before);
    assert_eq!(d.payload_copies, 0, "state 5: still zero-copy");
}

#[test]
fn runner_reports_latency() {
    use ncache_repro::sim::time::Duration;
    use ncache_repro::testbed::runner::{run, DriverOp, RunOptions};
    let mut rig = NfsRig::new(ServerMode::Original, NfsRigParams::default());
    let fh = rig.create_sparse_file("lat", 1 << 20);
    let ops: Vec<DriverOp> = (0..32u32)
        .map(|i| DriverOp::Read {
            fh,
            offset: i * 32768,
            len: 32768,
        })
        .collect();
    let r = run(&mut rig, ops, &RunOptions::default());
    assert!(r.mean_latency > Duration::ZERO);
    assert!(r.p99_latency >= r.mean_latency / 2, "p99 is a high quantile");
    // Sanity: Little's law-ish bound — latency × throughput cannot exceed
    // outstanding work by much.
    let implied = r.mean_latency.as_secs_f64() * r.ops_per_sec;
    assert!(implied <= 9.0, "≈{implied} outstanding with concurrency 8");
}
