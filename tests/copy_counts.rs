//! Table 2, measured: data copies per request on every path and build.
//!
//! These are the paper's central numbers. The ledgers count real `memcpy`s
//! in the data plane, so the assertions here are measurements, not
//! assumptions.

use ncache_repro::netbuf::{NetBuf, Segment};
use ncache_repro::servers::ServerMode;
use ncache_repro::testbed::experiments::{render_table2, table2};
use ncache_repro::testbed::nfs_rig::{NfsRig, NfsRigParams};

#[test]
fn table2_matches_the_paper_exactly() {
    let rows = table2();
    let get = |path: &str| {
        rows.iter()
            .find(|r| r.path == path)
            .unwrap_or_else(|| panic!("missing row {path}"))
            .copies
    };
    // Original build — Table 2 of the paper.
    assert_eq!(get("NFS read (hit)"), [2, 0, 0]);
    assert_eq!(get("NFS read (miss)"), [3, 0, 0]);
    assert_eq!(get("NFS write (overwritten)"), [1, 0, 0]);
    assert_eq!(get("NFS write (flushed)"), [2, 0, 0]);
    assert_eq!(get("kHTTPd (hit)"), [1, 0, 0]);
    assert_eq!(get("kHTTPd (miss)"), [2, 0, 0]);
    let rendered = render_table2(&rows);
    assert!(rendered.contains("original"));
    assert!(rendered.contains("baseline"));
}

#[test]
fn ncache_multiblock_read_moves_no_payload() {
    // Not just single blocks: a 32 KiB read (8 blocks) through the NCache
    // build must move zero payload bytes on the application server.
    let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
    let fh = rig.create_sparse_file("f", 1 << 20);
    rig.getattr(fh); // warm metadata
    rig.read(fh, 0, 32 << 10); // warm data into the caches
    let before = rig.ledgers().app.snapshot();
    let data = rig.read(fh, 0, 32 << 10);
    let d = rig.ledgers().app.snapshot().delta_since(&before);
    assert_eq!(d.payload_copies, 0, "zero copies on the hot read path");
    assert_eq!(d.payload_bytes_copied, 0);
    assert!(d.logical_copies > 0, "keys moved instead");
    assert_eq!(data.len(), 32 << 10);
}

#[test]
fn original_copy_bytes_scale_with_request_size() {
    // Two copies per hit: bytes copied must be exactly 2 × request size.
    let mut rig = NfsRig::new(ServerMode::Original, NfsRigParams::default());
    let fh = rig.create_file("f", 1 << 20);
    rig.read(fh, 0, 32 << 10); // warm
    for &len in &[4096u32, 8192, 16384, 32768] {
        let before = rig.ledgers().app.snapshot();
        rig.read(fh, 0, len);
        let d = rig.ledgers().app.snapshot().delta_since(&before);
        assert_eq!(
            d.payload_bytes_copied,
            2 * u64::from(len),
            "hit path: exactly two copies of {len} bytes"
        );
    }
}

#[test]
fn checksum_inheritance_happens_under_ncache() {
    use ncache_repro::testbed::khttpd_rig::{KhttpdRig, KhttpdRigParams};
    let mut rig = KhttpdRig::new(ServerMode::NCache, KhttpdRigParams::default());
    rig.publish("p", 64 << 10);
    let before = rig.ledgers().app.snapshot();
    rig.get("/p");
    let d = rig.ledgers().app.snapshot().delta_since(&before);
    assert_eq!(d.csum_bytes, 0, "NCache never recomputes payload checksums");
    assert!(d.csum_inherited > 0, "it inherits the stored one (§1)");

    // The original build does compute them on its TCP path.
    let mut orig = KhttpdRig::new(ServerMode::Original, KhttpdRigParams::default());
    orig.publish("p", 64 << 10);
    let before = orig.ledgers().app.snapshot();
    orig.get("/p");
    let d = orig.ledgers().app.snapshot().delta_since(&before);
    assert_eq!(d.csum_bytes, 64 << 10);
}

#[test]
fn garbage_error_replies_charge_the_server_like_real_ones() {
    // The happy path charges the server ledger for every request byte the
    // parser pulls plus the reply header it builds; an error reply to a
    // garbage datagram must be attributed the same way — the examined
    // bytes are not parsed for free, and no payload ever moves.
    let mut rig = NfsRig::new(ServerMode::Original, NfsRigParams::default());
    rig.create_file("ok", 8192);
    for garbage_len in [3usize, 39, 200] {
        let ledger = rig.ledgers().client.clone();
        let mut req = NetBuf::new(&ledger);
        req.append_segment(Segment::from_vec(vec![0xFFu8; garbage_len]));
        let before = rig.ledgers().app.snapshot();
        let reply = rig.handle_raw(req);
        let d = rig.ledgers().app.snapshot().delta_since(&before);
        assert!(reply.total_len() > 0, "an error reply comes back");
        assert_eq!(d.payload_copies, 0, "error replies move no payload");
        assert_eq!(d.payload_bytes_copied, 0);
        assert_eq!(d.logical_copies, 1, "one delivery of the datagram");
        // Examined request bytes (capped at the RPC call header length, as
        // on the happy path) + the error reply's header.
        let examined = garbage_len.min(ncache_repro::proto::rpc::CALL_LEN) as u64;
        assert_eq!(
            d.header_bytes,
            examined + reply.header_len() as u64,
            "garbage of {garbage_len} bytes: parse + reply build, nothing else"
        );
    }
}

#[test]
fn storage_server_copies_are_identical_across_builds() {
    // The paper changes only the application server; the storage server
    // must do the same work under every build.
    let mut per_mode = Vec::new();
    for mode in ServerMode::ALL {
        let mut rig = NfsRig::new(mode, NfsRigParams::default());
        let fh = rig.create_sparse_file("f", 256 << 10);
        rig.getattr(fh);
        let before = rig.ledgers().storage.snapshot();
        rig.read(fh, 0, 32 << 10); // cold: goes to storage
        let d = rig.ledgers().storage.snapshot().delta_since(&before);
        per_mode.push((mode, d.payload_copies, d.payload_bytes_copied));
    }
    let (_, c0, b0) = per_mode[0];
    for &(mode, c, b) in &per_mode {
        assert_eq!((c, b), (c0, b0), "{mode}: storage-side work must match");
    }
    assert!(c0 > 0, "the cold read really hit storage");
}
