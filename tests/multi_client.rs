//! Sixteen interleaved NFS client sessions, overlapping writes to one
//! shared file, under 2% message loss — in every build configuration:
//! Original, NCache with 1 shard, NCache with 8 shards, and Baseline.
//!
//! Checks, per configuration: every operation eventually completes (the
//! fault plan's forced-clean guarantee), the final file contents are
//! exactly the last write per block (Baseline verified at the durable
//! file-system layer, since its replies carry junk payload by design),
//! and the trace's copy events reconcile exactly against the recorder's
//! counters and the per-node [`CopyLedger`] deltas. The two NCache shard
//! counts must also be observationally identical: same ledger deltas,
//! same merged cache statistics, same fault-recovery counts.

use ncache_repro::netbuf::LedgerSnapshot;
use ncache_repro::obs::{EventKind, Recorder, TraceConfig};
use ncache_repro::proto::nfs::NFS_OK;
use ncache_repro::servers::nfs::{fh_to_ino, NfsClient};
use ncache_repro::servers::ServerMode;
use ncache_repro::sim::FaultSpec;
use ncache_repro::testbed::nfs_rig::{NfsRig, NfsRigParams};

const BLOCK: usize = 4096;
const BLOCKS: usize = 32;
const SESSIONS: usize = 16;
const ROUNDS: usize = 5;
const SEED: u64 = 11;

/// Distinct, attributable fill byte for each (session, round) write.
fn fill(session: usize, round: usize) -> u8 {
    ((round as u8) << 4) | session as u8
}

/// The block session `s` writes in round `r`: strides chosen so sessions
/// overlap heavily (every block is written by several sessions).
fn target_block(session: usize, round: usize) -> usize {
    (session * 3 + round * 7) % BLOCKS
}

struct ConfigOutcome {
    app_delta: LedgerSnapshot,
    storage_delta: LedgerSnapshot,
    cache_stats: Option<ncache_repro::ncache::NetCacheStats>,
    /// Total recovery actions: client retransmits, initiator retries,
    /// server DRC hits, cache invalidations.
    recovery: u64,
    drc_hits: u64,
}

/// Runs the full interleaved-session schedule on one configuration and
/// returns its observables.
fn run_config(mode: ServerMode, shards: usize) -> ConfigOutcome {
    let params = NfsRigParams {
        // Small FS cache: flush pressure (and, under NCache, remaps)
        // happens mid-schedule, not only at syncs.
        fs_cache_blocks: 12,
        shards,
        ..NfsRigParams::default()
    };
    let spec = FaultSpec {
        loss: 0.02,
        ..FaultSpec::default()
    };
    let mut rig = NfsRig::new_faulted(mode, params, &spec, SEED);
    let rec = Recorder::new();
    rec.enable(TraceConfig::default());
    rig.set_recorder(rec.clone());
    let base_client = rig.ledgers().client.snapshot();
    let base_app = rig.ledgers().app.snapshot();
    let base_storage = rig.ledgers().storage.snapshot();

    let fh = rig.create_file("shared.dat", (BLOCKS * BLOCK) as u64);
    let mut clients: Vec<NfsClient> = {
        let ledger = rig.ledgers().client.clone();
        (0..SESSIONS)
            .map(|i| NfsClient::with_xid_base(&ledger, (i as u32 + 1) << 20))
            .collect()
    };
    let mut model = NfsRig::pattern(fh, 0, BLOCKS * BLOCK);

    for round in 0..ROUNDS {
        for (session, client) in clients.iter_mut().enumerate() {
            rig.swap_client(client);
            let block = target_block(session, round);
            let at = block * BLOCK;
            let data = vec![fill(session, round); BLOCK];
            // Loss may eat a whole exchange; the fault plan forces a
            // clean delivery after three consecutive faults per link, so
            // a bounded retry always lands. A retry re-sends the same
            // bytes, so the model stays exact even if an unacknowledged
            // attempt already executed.
            let mut attempts = 0;
            let reply = loop {
                attempts += 1;
                assert!(attempts <= 8, "write never completed under loss=0.02");
                if let Some(r) = rig.try_write(fh, at as u32, &data) {
                    break r;
                }
            };
            assert_eq!(reply.status, NFS_OK);
            model[at..at + BLOCK].copy_from_slice(&data);

            // Every fourth session reads back a block some session wrote
            // earlier this round — cross-session freshness mid-schedule.
            if session % 4 == 0 && (mode != ServerMode::Baseline) {
                let peek = target_block(session / 4, round);
                let pat = peek * BLOCK;
                let mut attempts = 0;
                let (hdr, got) = loop {
                    attempts += 1;
                    assert!(attempts <= 8, "read never completed under loss=0.02");
                    if let Some(r) = rig.try_read(fh, pat as u32, BLOCK as u32) {
                        break r;
                    }
                };
                assert_eq!(hdr.status, NFS_OK);
                assert_eq!(
                    got,
                    &model[pat..pat + BLOCK],
                    "session {session} round {round}: stale read of block {peek}"
                );
            }
            rig.swap_client(client);
        }
        rig.server_mut().fs_mut().sync().expect("sync");
    }
    rig.server_mut().fs_mut().sync().expect("final sync");

    // Final contents: last write per block, byte for byte. The Baseline
    // build eliminates payload handling outright — it stores junk blocks
    // by design — so for it the contract is structural: the whole file
    // reads back at full length with the right metadata.
    if mode == ServerMode::Baseline {
        let got = rig.read(fh, 0, (BLOCKS * BLOCK) as u32);
        assert_eq!(got.len(), BLOCKS * BLOCK, "{mode}: short read");
        let attrs = rig
            .server_mut()
            .fs_mut()
            .getattr(fh_to_ino(fh))
            .expect("getattr");
        assert_eq!(attrs.size, (BLOCKS * BLOCK) as u64, "{mode}: size diverged");
    } else {
        let got = rig.read(fh, 0, (BLOCKS * BLOCK) as u32);
        assert_eq!(got, model, "{mode}: final read diverged");
    }

    // Reconcile the CopyLedger three ways: raw Copy events in the trace,
    // the recorder's derived counters, and the per-node ledger deltas
    // must all agree exactly — retransmissions and recovery included.
    let (mut ev_ops, mut ev_bytes) = (0u64, 0u64);
    for ev in rec.events() {
        if let EventKind::Copy {
            category: "payload",
            bytes,
        } = ev.kind
        {
            ev_ops += 1;
            ev_bytes += bytes;
        }
    }
    assert_eq!(ev_ops, rec.counter("copy.payload.ops"), "{mode}");
    assert_eq!(ev_bytes, rec.counter("copy.payload.bytes"), "{mode}");
    let ledgers = rig.ledgers();
    let client_delta = ledgers.client.snapshot().delta_since(&base_client);
    let app_delta = ledgers.app.snapshot().delta_since(&base_app);
    let storage_delta = ledgers.storage.snapshot().delta_since(&base_storage);
    assert_eq!(
        rec.counter("copy.payload.ops"),
        client_delta.payload_copies + app_delta.payload_copies + storage_delta.payload_copies,
        "{mode}: payload copy events must mirror the ledgers exactly"
    );
    assert_eq!(
        rec.counter("copy.payload.bytes"),
        client_delta.payload_bytes_copied
            + app_delta.payload_bytes_copied
            + storage_delta.payload_bytes_copied,
        "{mode}: payload copy bytes must mirror the ledgers exactly"
    );

    let fc = rig.fault_counters();
    let init_retries = rig.server_mut().fs_mut().store_mut().stats().retries;
    let drc_hits = rig.server_mut().stats().drc_hits;
    let invalidations = rig.module().map_or(0, |m| m.borrow().invalidations());
    ConfigOutcome {
        app_delta,
        storage_delta,
        cache_stats: rig.module().map(|m| m.borrow().stats()),
        recovery: fc.retransmits + init_retries + drc_hits + invalidations,
        drc_hits,
    }
}

#[test]
fn original_build() {
    let out = run_config(ServerMode::Original, 1);
    assert!(out.cache_stats.is_none());
    assert!(out.recovery > 0, "loss=0.02 must force some recovery");
}

#[test]
fn ncache_build_one_shard() {
    let out = run_config(ServerMode::NCache, 1);
    let stats = out.cache_stats.expect("NCache build has cache stats");
    assert!(stats.insertions > 0, "writes must populate the FHO cache");
    assert!(stats.remaps > 0, "syncs must remap dirty FHO chunks");
    assert_eq!(stats.evicted_dirty, 0, "no dirty chunk may be evicted");
}

#[test]
fn ncache_build_eight_shards_matches_one_shard() {
    let one = run_config(ServerMode::NCache, 1);
    let eight = run_config(ServerMode::NCache, 8);
    // Sharding must be unobservable: same copies on every node, same
    // merged cache statistics, same fault recovery.
    assert_eq!(one.app_delta, eight.app_delta);
    assert_eq!(one.storage_delta, eight.storage_delta);
    assert_eq!(one.cache_stats, eight.cache_stats);
    assert_eq!(one.recovery, eight.recovery);
    assert_eq!(one.drc_hits, eight.drc_hits);
}

#[test]
fn baseline_build() {
    let out = run_config(ServerMode::Baseline, 1);
    assert!(out.cache_stats.is_none());
    assert!(out.recovery > 0, "loss=0.02 must force some recovery");
}
