//! Remap ordering under write-back pressure (DESIGN invariants 2 + 5).
//!
//! A dirty FHO chunk holds the only copy of freshly written data. When the
//! file system flushes its placeholder block, the module must remap the
//! chunk to its LBN *before* any LBN write-back of that block leaves the
//! server — the flush itself must carry the cached payload — and a
//! subsequent READ must observe the fresh bytes. Eviction pressure must
//! never write back (or drop) an unremapped dirty FHO chunk.

use check::gen::*;
use check::{prop_assert, prop_assert_eq, property};

use ncache_repro::ncache::{NcacheConfig, NcacheModule, CHUNK_PAYLOAD};
use ncache_repro::netbuf::key::{Fho, FileHandle, KeyStamp, Lbn};
use ncache_repro::netbuf::{CopyLedger, Segment};
use ncache_repro::proto::nfs::NFS_OK;
use ncache_repro::servers::nfs::NfsClient;
use ncache_repro::servers::ServerMode;
use ncache_repro::testbed::nfs_rig::{NfsRig, NfsRigParams};

const BLOCK: usize = 4096;

fn chunk(fill: u8) -> Vec<Segment> {
    vec![Segment::from_vec(vec![fill; CHUNK_PAYLOAD])]
}

fn placeholder(stamp: KeyStamp) -> Vec<u8> {
    let mut block = vec![0u8; CHUNK_PAYLOAD];
    stamp.encode_into(&mut block);
    block
}

/// Module-level: under eviction pressure, dirty FHO chunks are pinned —
/// they never appear in the write-back queue before their flush, and the
/// flush-time remap happens before (and instead of) any separate LBN
/// write-back.
#[test]
fn flush_remaps_dirty_fho_before_any_lbn_writeback() {
    let ledger = CopyLedger::new();
    // Room for ~6 chunks: three dirty FHO entries plus a little slack.
    let mut m = NcacheModule::new(
        NcacheConfig::with_capacity(6 * (CHUNK_PAYLOAD as u64 + 64)),
        &ledger,
    );

    // Three dirty writes land in the FHO half of the cache.
    let mut stamps = Vec::new();
    for i in 0..3u64 {
        let fho = Fho::new(FileHandle(9), i * BLOCK as u64);
        let stamp = m
            .on_nfs_write(fho, chunk(0xA0 + i as u8), CHUNK_PAYLOAD)
            .expect("cache has room");
        assert!(m.cache_contains_fho(fho));
        stamps.push((fho, stamp));
    }

    // Eviction pressure from the read path: clean LBN chunks stream
    // through, far more than fit. Dirty FHO chunks must be skipped by
    // reclaim, and nothing may be queued for write-back.
    for i in 0..32u64 {
        m.on_data_in(Lbn(1000 + i), chunk(0x10), CHUNK_PAYLOAD)
            .expect("clean chunks reclaim silently");
    }
    assert!(
        m.take_writebacks().is_empty(),
        "pressure wrote back a chunk before its flush"
    );
    assert_eq!(m.stats().evicted_dirty, 0);
    for (fho, _) in &stamps {
        assert!(m.cache_contains_fho(*fho), "dirty FHO chunk was evicted");
    }

    // The file system flushes each placeholder. The remap must complete
    // within the flush hook: the returned payload (which becomes the iSCSI
    // write) is the fresh data, and by the time it returns the entry lives
    // under its LBN.
    for (i, (fho, stamp)) in stamps.iter().enumerate() {
        let lbn = Lbn(500 + i as u64);
        let segs = m
            .on_flush_write(&placeholder(*stamp), lbn)
            .expect("stamped placeholder resolves");
        assert_eq!(segs[0].as_slice()[0], 0xA0 + i as u8, "flush carries stale bytes");
        assert!(!m.cache_contains_fho(*fho), "remap left the FHO entry behind");
        assert!(m.cache_contains_lbn(lbn), "remap did not land under the LBN");
    }

    // The remapped entries are clean now: further pressure reclaims them
    // silently — still no write-back of these blocks ever queues.
    for i in 0..32u64 {
        m.on_data_in(Lbn(2000 + i), chunk(0x20), CHUNK_PAYLOAD)
            .expect("clean chunks reclaim silently");
    }
    assert!(m.take_writebacks().is_empty());
    assert_eq!(m.stats().evicted_dirty, 0);
    assert_eq!(m.stats().remaps, 3);
}

/// A READ immediately after the flush must see the fresh bytes straight
/// from the remapped LBN entry.
#[test]
fn read_after_flush_hits_remapped_lbn_with_fresh_bytes() {
    let ledger = CopyLedger::new();
    let mut m = NcacheModule::new(NcacheConfig::with_capacity(1 << 20), &ledger);
    let fho = Fho::new(FileHandle(3), 0);
    let stamp = m.on_nfs_write(fho, chunk(0xEE), CHUNK_PAYLOAD).expect("fits");
    let lbn = Lbn(77);
    m.on_flush_write(&placeholder(stamp), lbn).expect("remapped");
    let segs = m.cache_mut().lookup(lbn.into()).expect("resident under LBN");
    assert!(segs[0].as_slice().iter().all(|&b| b == 0xEE));
}

/// End-to-end: a tiny file-system buffer cache forces pressure-driven
/// flushes *during* a burst of writes (not at an explicit sync), so dirty
/// placeholders hit `on_flush_write` while later writes are still
/// arriving. Every flush must remap, and reads — both mid-burst from the
/// cache and post-sync from storage — must return the fresh bytes.
#[test]
fn rig_writes_under_fs_cache_pressure_then_reads_fresh_bytes() {
    const BLOCKS: usize = 32;
    let params = NfsRigParams {
        // 8-block FS cache against a 32-block working set: most writes
        // displace a dirty placeholder and trigger a flush.
        fs_cache_blocks: 8,
        ..NfsRigParams::default()
    };
    let mut rig = NfsRig::new(ServerMode::NCache, params);
    let fh = rig.create_file("pressure.dat", (BLOCKS * BLOCK) as u64);
    let module = rig.module().expect("NCache mode has a module");

    let mut model = NfsRig::pattern(fh, 0, BLOCKS * BLOCK);
    for block in 0..BLOCKS {
        let fill = 0x40 + block as u8;
        let data = vec![fill; BLOCK];
        model[block * BLOCK..(block + 1) * BLOCK].copy_from_slice(&data);
        rig.write(fh, (block * BLOCK) as u32, &data);
    }

    // The FS cache is 4x smaller than the dirty set, so flushes (and with
    // them remaps) must already have happened under pressure.
    assert!(
        module.borrow().stats().remaps > 0,
        "no pressure-driven flush remapped anything"
    );

    // Mid-burst read-back: fresh bytes for every block, flushed or not.
    for block in 0..BLOCKS {
        let got = rig.read(fh, (block * BLOCK) as u32, BLOCK as u32);
        assert_eq!(got, &model[block * BLOCK..(block + 1) * BLOCK], "block {block}");
    }

    // Flush the remainder: no FHO entry may survive a full sync — every
    // dirty chunk was remapped to its LBN, none silently dropped.
    rig.server_mut().fs_mut().sync().expect("sync");
    {
        let m = module.borrow();
        for block in 0..BLOCKS {
            let fho = Fho::new(FileHandle(fh), (block * BLOCK) as u64);
            assert!(!m.cache_contains_fho(fho), "unremapped FHO after sync: block {block}");
        }
        assert_eq!(m.stats().evicted_dirty, 0, "a dirty chunk bypassed remapping");
    }

    let whole = rig.read(fh, 0, (BLOCKS * BLOCK) as u32);
    assert_eq!(whole, model, "post-sync read returned stale bytes");
}

/// One step of a generated multi-session schedule.
#[derive(Clone, Debug)]
struct SessionStep {
    session: usize,
    action: u8,
    block: usize,
    fill: u8,
}

fn session_step(sessions: usize, blocks: usize) -> impl Gen<Value = SessionStep> {
    (
        ints(0usize..sessions),
        ints(0u8..8),
        ints(0usize..blocks),
        any_u8(),
    )
        .map(|(session, action, block, fill)| SessionStep {
            session,
            action,
            block,
            fill,
        })
}

property! {
    #![cases(16)]

    /// Invariants 2 + 5 under arbitrary multi-session interleavings: M
    /// sessions (each on its own client and xid base) write, read and
    /// sync a shared file in a generated order, against a deliberately
    /// tiny file-system cache so flush-time remaps fire mid-schedule.
    /// Every read — from any session, at any point — must observe the
    /// newest write (FHO-before-LBN resolution), no dirty chunk may ever
    /// be evicted unremapped, and a full sync must leave no FHO entry
    /// behind (every remap overwrote any stale LBN copy, which the final
    /// whole-file read verifies byte for byte).
    fn prop_interleaved_sessions_preserve_remap_invariants(
        steps in vec_of(session_step(4, 24), 1..120),
    ) {
        const SESSIONS: usize = 4;
        const BLOCKS: usize = 24;
        let params = NfsRigParams {
            fs_cache_blocks: 8,
            shards: 2,
            ..NfsRigParams::default()
        };
        let mut rig = NfsRig::new(ServerMode::NCache, params);
        let fh = rig.create_file("interleave.dat", (BLOCKS * BLOCK) as u64);
        let module = rig.module().expect("NCache mode has a module");
        let mut clients: Vec<NfsClient> = {
            let ledger = rig.ledgers().client.clone();
            (0..SESSIONS)
                .map(|i| NfsClient::with_xid_base(&ledger, (i as u32 + 1) << 20))
                .collect()
        };
        let mut model = NfsRig::pattern(fh, 0, BLOCKS * BLOCK);
        for step in &steps {
            rig.swap_client(&mut clients[step.session]);
            let at = step.block * BLOCK;
            match step.action {
                0..=4 => {
                    // Fill is session-tagged so a stale read is
                    // attributable to the session whose bytes leaked.
                    let data = vec![step.fill ^ ((step.session as u8) << 6); BLOCK];
                    let reply = rig.write(fh, at as u32, &data);
                    prop_assert_eq!(reply.status, NFS_OK);
                    model[at..at + BLOCK].copy_from_slice(&data);
                }
                5..=6 => {
                    let got = rig.read(fh, at as u32, BLOCK as u32);
                    prop_assert_eq!(
                        &got[..], &model[at..at + BLOCK],
                        "session {} read stale block {}", step.session, step.block
                    );
                }
                _ => {
                    rig.server_mut().fs_mut().sync().expect("sync");
                }
            }
            rig.swap_client(&mut clients[step.session]);
            // Invariant 5, continuously: eviction never claims a dirty
            // (unremapped) chunk, whatever the interleaving.
            prop_assert_eq!(module.borrow().stats().evicted_dirty, 0);
        }
        rig.server_mut().fs_mut().sync().expect("final sync");
        {
            let m = module.borrow();
            for block in 0..BLOCKS {
                let fho = Fho::new(FileHandle(fh), (block * BLOCK) as u64);
                prop_assert!(
                    !m.cache_contains_fho(fho),
                    "unremapped FHO survived the final sync: block {}", block
                );
            }
            prop_assert_eq!(m.stats().evicted_dirty, 0);
        }
        let whole = rig.read(fh, 0, (BLOCKS * BLOCK) as u32);
        prop_assert_eq!(whole, model, "final contents diverged from the model");
        // Sessions never aliased in the server's duplicate-request cache.
        prop_assert_eq!(rig.server_mut().stats().drc_hits, 0);
    }
}
