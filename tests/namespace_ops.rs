//! The full NFS namespace lifecycle over the wire: CREATE, WRITE, READDIR
//! (with paging), REMOVE — across every build.

use ncache_repro::netbuf::NetBuf;
use ncache_repro::proto::nfs::{LookupReply, ReaddirReply, RemoveReply, NFS_OK};
use ncache_repro::servers::ServerMode;
use ncache_repro::testbed::nfs_rig::{NfsRig, NfsRigParams};

fn roundtrip(rig: &mut NfsRig, req: NetBuf) -> NetBuf {
    rig.handle_raw(req)
}

fn create(rig: &mut NfsRig, name: &str) -> LookupReply {
    let root = rig.server_mut().root_fh();
    let req = rig.client_mut().create_request(root, name);
    let reply = roundtrip(rig, req);
    // Clone the ledger handle first to satisfy the borrow checker.
    rig.client_mut().parse_create_reply(&reply)
}

fn remove(rig: &mut NfsRig, name: &str) -> RemoveReply {
    let root = rig.server_mut().root_fh();
    let req = rig.client_mut().remove_request(root, name);
    let reply = roundtrip(rig, req);
    rig.client_mut().parse_remove_reply(&reply)
}

fn readdir(rig: &mut NfsRig, cookie: u32, count: u32) -> ReaddirReply {
    let root = rig.server_mut().root_fh();
    let req = rig.client_mut().readdir_request(root, cookie, count);
    let reply = roundtrip(rig, req);
    rig.client_mut().parse_readdir_reply(&reply)
}

#[test]
fn create_write_read_remove_lifecycle() {
    for mode in [ServerMode::Original, ServerMode::NCache] {
        let mut rig = NfsRig::new(mode, NfsRigParams::default());
        // Create over the wire.
        let created = create(&mut rig, "wire.dat");
        assert_eq!(created.status, NFS_OK, "{mode}");
        let fh = created.fh;
        // It is immediately visible to LOOKUP and usable for I/O.
        assert_eq!(rig.lookup("wire.dat"), Some(fh), "{mode}");
        let data = vec![0x3Cu8; 8192];
        assert_eq!(rig.write(fh, 0, &data).status, NFS_OK, "{mode}");
        assert_eq!(rig.read(fh, 0, 8192), data, "{mode}");
        // Creating the same name again fails with EEXIST (17).
        assert_eq!(create(&mut rig, "wire.dat").status, 17, "{mode}");
        // Remove it; the name and handle are gone.
        assert_eq!(remove(&mut rig, "wire.dat").status, NFS_OK, "{mode}");
        assert_eq!(rig.lookup("wire.dat"), None, "{mode}");
        assert_ne!(rig.getattr(fh), NFS_OK, "{mode}");
        // Removing again errors.
        assert_ne!(remove(&mut rig, "wire.dat").status, NFS_OK, "{mode}");
    }
}

#[test]
fn readdir_lists_everything_and_pages() {
    let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
    let mut names: Vec<String> = (0..40).map(|i| format!("entry{i:02}")).collect();
    for name in &names {
        assert_eq!(create(&mut rig, name).status, NFS_OK);
    }

    // One big page lists all entries.
    let all = readdir(&mut rig, 0, 64 << 10);
    assert_eq!(all.status, NFS_OK);
    assert!(all.eof);
    let mut listed: Vec<String> = all.entries.iter().map(|e| e.name.clone()).collect();
    listed.sort();
    names.sort();
    assert_eq!(listed, names);

    // Small pages walk the directory with cookies.
    let mut cookie = 0u32;
    let mut paged = Vec::new();
    loop {
        let page = readdir(&mut rig, cookie, 128);
        assert_eq!(page.status, NFS_OK);
        assert!(!page.entries.is_empty(), "pages make progress");
        cookie += page.entries.len() as u32;
        paged.extend(page.entries.iter().map(|e| e.name.clone()));
        if page.eof {
            break;
        }
    }
    paged.sort();
    assert_eq!(paged, names, "paged listing covers every entry exactly once");
}

#[test]
fn removed_file_blocks_are_reusable() {
    let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
    let created = create(&mut rig, "temp");
    let fh = created.fh;
    rig.write(fh, 0, &vec![1u8; 64 << 10]);
    let free_before = rig.server_mut().fs_mut().free_blocks();
    assert_eq!(remove(&mut rig, "temp").status, NFS_OK);
    assert!(
        rig.server_mut().fs_mut().free_blocks() > free_before,
        "blocks returned to the allocator"
    );
    // A new file reuses the space and reads back correctly.
    let again = create(&mut rig, "temp2");
    let fh2 = again.fh;
    let data = vec![9u8; 64 << 10];
    assert_eq!(rig.write(fh2, 0, &data).status, NFS_OK);
    assert_eq!(rig.read(fh2, 0, 64 << 10), data);
}

#[test]
fn remove_with_unflushed_writes_frees_dirty_fho_chunks() {
    // A dirty FHO chunk belonging to a removed file must not stay pinned:
    // it is unevictable until remapped, and removal means no flush will
    // ever remap it.
    let params = NfsRigParams {
        ncache_bytes: 8 * (4096 + 128), // room for just 8 chunks
        ..NfsRigParams::default()
    };
    let mut rig = NfsRig::new(ServerMode::NCache, params);
    for round in 0..5 {
        let name = format!("round{round}");
        let created = create(&mut rig, &name);
        assert_eq!(created.status, NFS_OK, "round {round}");
        // Dirty the whole NCache-worth of blocks without flushing.
        for blk in 0..8u32 {
            let reply = rig.write(created.fh, blk * 4096, &vec![round as u8; 4096]);
            assert_eq!(reply.status, NFS_OK, "round {round} blk {blk}");
        }
        assert_eq!(remove(&mut rig, &name).status, NFS_OK, "round {round}");
    }
    // If removal leaked dirty FHO chunks, the cache would have wedged
    // after the first round; reaching here with a serving rig proves it
    // did not.
    let fh = rig.create_file("final", 16 << 10);
    assert_eq!(rig.read(fh, 0, 4096), NfsRig::pattern(fh, 0, 4096));
    let module = rig.module().expect("ncache build");
    assert!(
        module.borrow().cache_len() <= 8,
        "cache bounded after removals"
    );
}
