//! Determinism regression (DESIGN invariant 7): the simulation is a pure
//! function of its inputs. Running the same experiment twice in one
//! process must produce bit-identical series — no wall-clock, no global
//! RNG, no iteration-order dependence may leak into results.

use ncache_repro::testbed::experiments::{self, Scale};

/// Small-but-nontrivial sizing: big enough to exercise eviction, read-ahead
/// and both cache halves, small enough to run twice in a test.
fn scale() -> Scale {
    Scale {
        allmiss_file: 2 << 20,
        allhit_file: 1 << 20,
        allhit_passes: 1,
        specweb_working_sets: vec![4 << 20, 8 << 20],
        web_cache_bytes: 6 << 20,
        specweb_requests: 80,
        specsfs_ops: 200,
        specsfs_files: 8,
        specsfs_file_size: 64 << 10,
        overload_requests: 96,
    }
}

#[test]
fn fig4_all_miss_is_bit_identical_across_runs() {
    let s = scale();
    let (thr_a, cpu_a) = experiments::fig4(&s);
    let (thr_b, cpu_b) = experiments::fig4(&s);
    assert_eq!(thr_a, thr_b, "throughput series diverged between runs");
    assert_eq!(cpu_a, cpu_b, "CPU-utilization series diverged between runs");
}

#[test]
fn fig7_specsfs_is_bit_identical_across_runs() {
    // SPECsfs drives its own seeded RNG through namespace ops — the
    // experiment most likely to pick up accidental nondeterminism.
    let s = scale();
    let a = experiments::fig7(&s);
    let b = experiments::fig7(&s);
    assert_eq!(a, b, "SPECsfs series diverged between runs");
}
