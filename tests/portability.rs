//! The FreeBSD-port claim of §4.2, enforced: "using mbuf, rather than
//! sk_buff, does not lead to any structural change to NCache". The cache
//! stores reference-counted payload views, so chunks built from BSD-style
//! mbuf chains flow through the same insert / remap / substitute machinery
//! as sk_buff-style buffers, byte for byte and copy for copy.

use ncache_repro::ncache::{NcacheConfig, NcacheModule};
use ncache_repro::netbuf::key::{Fho, FileHandle, KeyStamp, Lbn};
use ncache_repro::netbuf::mbuf::{MbufChain, MCLBYTES};
use ncache_repro::netbuf::{CopyLedger, NetBuf, Segment};

#[test]
fn mbuf_payload_caches_and_substitutes_without_copies() {
    let ledger = CopyLedger::new();
    let mut module = NcacheModule::new(NcacheConfig::with_capacity(1 << 22), &ledger);

    // A block arrives as a FreeBSD mbuf chain: two clusters.
    let pattern: Vec<u8> = (0..4096u32).map(|x| (x * 7) as u8).collect();
    let arrival = MbufChain::from_segments(
        &ledger,
        vec![
            Segment::from_vec(pattern[..MCLBYTES].to_vec()),
            Segment::from_vec(pattern[MCLBYTES..].to_vec()),
        ],
    );

    // Hook 1 takes the chain's shared segments — no structural change, no
    // physical copy.
    let before = ledger.snapshot();
    let segs = arrival.share_segments(&ledger);
    let placeholder = module.on_data_in(Lbn(42), segs, 4096).expect("fits");
    assert_eq!(
        ledger.snapshot().delta_since(&before).payload_copies,
        0,
        "caching an mbuf payload moves no bytes"
    );
    assert_eq!(
        KeyStamp::decode(placeholder.as_slice()).expect("stamped").lbn,
        Some(Lbn(42))
    );

    // An outgoing sk_buff-style reply substitutes the mbuf-born chunk.
    let mut reply = NetBuf::new(&ledger);
    reply.append_segment(placeholder);
    let report = module.on_transmit(&mut reply);
    assert_eq!(report.substituted, 1);
    assert_eq!(reply.copy_payload_to_vec(), pattern, "bytes intact across flavours");
}

#[test]
fn mbuf_write_path_remaps_like_sk_buff() {
    let ledger = CopyLedger::new();
    let mut module = NcacheModule::new(NcacheConfig::with_capacity(1 << 22), &ledger);

    // An NFS write arrives as an mbuf chain.
    let fresh = vec![0xB7u8; 4096];
    let chain = MbufChain::from_segments(&ledger, vec![Segment::from_vec(fresh.clone())]);
    let fho = Fho::new(FileHandle(5), 0);
    let stamp = module
        .on_nfs_write(fho, chain.share_segments(&ledger), 4096)
        .expect("fits");

    // Flush: remap FHO→LBN; the outgoing iSCSI payload can be re-wrapped
    // as an mbuf chain for a BSD initiator, still without copying.
    let mut placeholder = vec![0u8; 4096];
    stamp.encode_into(&mut placeholder);
    let segs = module
        .on_flush_write(&placeholder, Lbn(9))
        .expect("remapped");
    let before = ledger.snapshot();
    let outgoing = MbufChain::from_segments(&ledger, segs);
    assert_eq!(
        ledger.snapshot().delta_since(&before).payload_copies,
        0,
        "re-wrapping as mbufs is logical"
    );
    assert_eq!(outgoing.to_bytes(&ledger), fresh);
    assert!(module.cache_contains_lbn(Lbn(9)));
}

#[test]
fn chains_round_trip_between_flavours() {
    // sk_buff → mbuf → sk_buff preserves both bytes and sharing.
    let ledger = CopyLedger::new();
    let seg = Segment::from_vec((0..2048u16).map(|x| x as u8).collect());
    let mut skb = NetBuf::new(&ledger);
    skb.append_segment(seg.clone());

    let chain = MbufChain::from_segments(&ledger, skb.take_payload());
    let mut back = NetBuf::new(&ledger);
    for s in chain.share_segments(&ledger) {
        back.append_segment(s);
    }
    assert!(
        back.segments().next().expect("one segment").same_storage(&seg),
        "the storage is shared across all three representations"
    );
    assert_eq!(back.copy_payload_to_vec(), seg.as_slice());
}

#[test]
fn iscsi_write_handshake_uses_r2t() {
    // The write path follows the iSCSI handshake: command → R2T → Data-Out
    // → response. Proven indirectly: `IscsiTarget::solicit` grants exactly
    // the command's transfer length, and the full write path (which now
    // consumes the R2T) still round-trips.
    use ncache_repro::proto::iscsi::{IscsiPdu, ScsiCommand, ScsiOp};
    use ncache_repro::servers::IscsiTarget;
    let ledger = CopyLedger::new();
    let target = IscsiTarget::new(64, &ledger);
    let cmd = ScsiCommand {
        itt: 5,
        op: ScsiOp::Write,
        lbn: 3,
        blocks: 2,
    };
    let r2t = target.solicit(cmd);
    let decoded = IscsiPdu::decode(r2t.header()).expect("valid");
    let IscsiPdu::R2T(grant) = decoded else {
        panic!("expected R2T, got {decoded:?}");
    };
    assert_eq!(grant.itt, 5);
    assert_eq!(grant.lbn, 3);
    assert_eq!(grant.desired_len, 2 * 4096);
}
