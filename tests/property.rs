//! Property-based tests of the cross-crate invariants: the full NFS rig
//! against an in-memory file model, the network-centric cache against a
//! value model, and substitution against hand-computed expectations.

use check::gen::*;
use check::{prop_assert, prop_assert_eq, property};

use ncache_repro::ncache::cache::NetCache;
use ncache_repro::ncache::shards::NetCacheShards;
use ncache_repro::ncache::substitute::substitute_payload;
use ncache_repro::netbuf::key::{Fho, FileHandle, KeyStamp, Lbn};
use ncache_repro::netbuf::{BufPool, CopyLedger, NetBuf, Segment};
use ncache_repro::proto::nfs::NFS_OK;
use ncache_repro::servers::ServerMode;
use ncache_repro::testbed::nfs_rig::{NfsRig, NfsRigParams};

/// Random reads/writes through the whole pass-through server must agree
/// with a plain in-memory byte model, in both correct builds.
#[derive(Clone, Debug)]
enum FileOp {
    Write { block: u8, fill: u8 },
    Read { block: u8 },
    Flush,
}

fn file_op() -> impl Gen<Value = FileOp> {
    check::one_of![
        (ints(0u8..32), any_u8()).map(|(block, fill)| FileOp::Write { block, fill }),
        ints(0u8..32).map(|block| FileOp::Read { block }),
        just(FileOp::Flush),
    ]
}

property! {
    #![cases(12)]

    fn prop_rig_agrees_with_byte_model(
        ops in vec_of(file_op(), 1..60),
        ncache_mode in any_bool(),
    ) {
        let mode = if ncache_mode { ServerMode::NCache } else { ServerMode::Original };
        let mut rig = NfsRig::new(mode, NfsRigParams::default());
        let fh = rig.create_file("model", 32 * 4096);
        let mut model = NfsRig::pattern(fh, 0, 32 * 4096);
        for op in ops {
            match op {
                FileOp::Write { block, fill } => {
                    let data = vec![fill; 4096];
                    let at = usize::from(block) * 4096;
                    model[at..at + 4096].copy_from_slice(&data);
                    let reply = rig.write(fh, at as u32, &data);
                    prop_assert_eq!(reply.status, NFS_OK);
                }
                FileOp::Read { block } => {
                    let at = usize::from(block) * 4096;
                    let got = rig.read(fh, at as u32, 4096);
                    prop_assert_eq!(&got[..], &model[at..at + 4096], "block {}", block);
                }
                FileOp::Flush => {
                    rig.server_mut().fs_mut().sync().expect("sync");
                }
            }
        }
        // Final sweep: the whole file agrees.
        let whole = rig.read(fh, 0, 32 * 4096);
        prop_assert_eq!(whole, model);
    }

    /// The network-centric cache is a value store: every lookup hit returns
    /// the newest value inserted under that key, across inserts, remaps and
    /// invalidations, regardless of eviction pressure.
    fn prop_netcache_is_a_correct_value_store(
        ops in vec_of((ints(0u8..4), ints(0u64..12), any_u8()), 1..150),
        capacity_chunks in ints(3u64..20),
    ) {
        let mut cache = NetCache::new(
            BufPool::new(capacity_chunks * (4096 + 64)),
            64,
        );
        use std::collections::HashMap;
        let mut lbn_model: HashMap<u64, u8> = HashMap::new();
        let mut fho_model: HashMap<u64, u8> = HashMap::new();
        let fho_of = |k: u64| Fho::new(FileHandle(1), k * 4096);
        for (kind, key, fill) in ops {
            match kind {
                0 => {
                    // insert LBN (clean)
                    if cache
                        .insert_lbn(Lbn(key), vec![Segment::from_vec(vec![fill; 4096])], 4096, false)
                        .is_ok()
                    {
                        lbn_model.insert(key, fill);
                    }
                }
                1 => {
                    // insert FHO (dirty)
                    if cache
                        .insert_fho(fho_of(key), vec![Segment::from_vec(vec![fill; 4096])], 4096)
                        .is_ok()
                    {
                        fho_model.insert(key, fill);
                    }
                }
                2 => {
                    // remap fho -> lbn(key)
                    if let Some(segs) = cache.remap(fho_of(key), Lbn(key)) {
                        let expect = fho_model.remove(&key).expect("model had the fho");
                        prop_assert_eq!(segs[0].as_slice()[0], expect);
                        lbn_model.insert(key, expect);
                        cache.mark_clean(Lbn(key).into());
                    } else {
                        prop_assert!(!fho_model.contains_key(&key));
                    }
                }
                _ => {
                    // lookups: a hit must return the model's value; a miss
                    // is only legal if eviction could have removed it (it
                    // can for clean entries, never for dirty FHO entries).
                    if let Some(segs) = cache.lookup(Lbn(key).into()) {
                        prop_assert_eq!(segs[0].as_slice()[0], lbn_model[&key]);
                    }
                    match cache.lookup(fho_of(key).into()) {
                        Some(segs) => {
                            prop_assert_eq!(segs[0].as_slice()[0], fho_model[&key]);
                        }
                        None => {
                            // Dirty FHO chunks are never evicted (§3.4).
                            prop_assert!(
                                !fho_model.contains_key(&key),
                                "dirty FHO entry {} vanished", key
                            );
                        }
                    }
                }
            }
        }
    }

    /// Substitution, for arbitrary mixes of plain and stamped segments:
    /// stamped segments resolve to the cached bytes clipped to the
    /// placeholder length; plain segments pass through untouched.
    fn prop_substitution_matches_reference(
        blocks in vec_of((any_bool(), ints(0u64..8), ints(1usize..4096), any_u8()), 1..12),
    ) {
        let ledger = CopyLedger::new();
        let cache = NetCacheShards::new(BufPool::new(1 << 22), 0, 2);
        for lbn in 0..8u64 {
            cache
                .insert_lbn(Lbn(lbn), vec![Segment::from_vec(vec![lbn as u8 + 100; 4096])], 4096, false)
                .expect("fits");
        }
        let mut pkt = NetBuf::new(&ledger);
        let mut expect: Vec<u8> = Vec::new();
        for (stamped, lbn, len, fill) in blocks {
            let len = len.max(KeyStamp::LEN);
            if stamped {
                let mut junk = vec![0u8; len];
                KeyStamp::new().with_lbn(Lbn(lbn)).encode_into(&mut junk);
                pkt.append_segment(Segment::from_vec(junk));
                expect.extend(std::iter::repeat_n(lbn as u8 + 100, len));
            } else {
                // Plain data must not look like a stamp.
                let mut data = vec![fill; len];
                data[0] = b'X';
                pkt.append_segment(Segment::from_vec(data.clone()));
                expect.extend_from_slice(&data);
            }
        }
        let report = substitute_payload(&mut pkt, &cache);
        prop_assert_eq!(report.missing, 0);
        prop_assert_eq!(pkt.copy_payload_to_vec(), expect);
    }
}

property! {
    #![cases(10)]

    /// Fault recovery end to end, for arbitrary seeded fault plans: every
    /// read either completes with exactly the file's bytes or fails
    /// cleanly — recovery never surfaces junk-payload placeholders — and a
    /// zero fault rate means zero recovery activity.
    fn prop_faulted_reads_never_surface_junk(
        seed in ints(0u64..1_000_000),
        zero_rates in any_bool(),
        rates in vec_of(ints(0u32..100_000), 7..8),
        blocks in vec_of(ints(0u32..16), 1..24),
    ) {
        use ncache_repro::sim::FaultSpec;
        use ncache_repro::testbed::nfs_rig::FaultCounters;
        let ppm = f64::from(1_000_000u32);
        let rate = |i: usize| {
            if zero_rates { 0.0 } else { f64::from(rates[i]) / ppm }
        };
        let spec = FaultSpec {
            loss: rate(0),
            duplicate: rate(1),
            reorder: rate(2),
            delay: rate(3),
            truncate: rate(4),
            corrupt: rate(5),
            io: rate(6),
        };
        let mut rig = NfsRig::new_faulted(
            ServerMode::NCache,
            NfsRigParams::default(),
            &spec,
            seed,
        );
        let fh = rig.create_file("f", 64 << 10);
        let mut completed = 0u32;
        for block in blocks {
            if let Some((hdr, data)) = rig.try_read(fh, block * 4096, 4096) {
                prop_assert_eq!(hdr.status, NFS_OK);
                prop_assert_eq!(
                    &data[..],
                    &NfsRig::pattern(fh, u64::from(block) * 4096, 4096)[..],
                    "completed read of block {} returned wrong bytes", block
                );
                completed += 1;
            }
        }
        if spec.is_zero() {
            prop_assert_eq!(rig.fault_counters(), FaultCounters::default());
            prop_assert_eq!(rig.server_mut().fs_mut().store_mut().stats().retries, 0);
            prop_assert_eq!(rig.server_mut().stats().drc_hits, 0);
            prop_assert!(completed > 0, "a clean link completes every read");
        }
    }
}

property! {
    #![cases(16)]

    /// Slab recycling must never leak one segment's bytes into the next: a
    /// pooled buffer whose fill closure writes only a prefix reads as zero
    /// everywhere else, no matter what previously lived in the slab.
    fn prop_recycled_slabs_never_leak_stale_bytes(
        rounds in vec_of((ints(1usize..4096), ints(0usize..4096), any_u8()), 1..40),
    ) {
        let pool = BufPool::slab_only();
        for (len, filled, fill) in rounds {
            let filled = filled.min(len);
            // Dirty a slab end to end, then drop it back to the free list.
            drop(pool.seg_filled(4096, |b| b.fill(fill.wrapping_add(1))));
            let seg = pool.seg_filled(len, |b| b[..filled].fill(fill));
            let bytes = seg.as_slice();
            prop_assert_eq!(bytes.len(), len);
            prop_assert!(bytes[..filled].iter().all(|&b| b == fill));
            prop_assert!(
                bytes[filled..].iter().all(|&b| b == 0),
                "stale bytes leaked through the free list"
            );
        }
    }

    /// Pooling is invisible to copy accounting: the same appends through
    /// the heap path and the pooled path charge byte-identical ledgers and
    /// carry byte-identical payloads.
    fn prop_ledgers_reconcile_with_pooling_on_and_off(
        chunks in vec_of(vec_of(any_u8(), 1..600), 1..20),
    ) {
        let pool = BufPool::slab_only();
        let plain_ledger = CopyLedger::new();
        let pooled_ledger = CopyLedger::new();
        let mut plain = NetBuf::new(&plain_ledger);
        let mut pooled = NetBuf::new(&pooled_ledger);
        for chunk in &chunks {
            plain.append_bytes(chunk);
            pooled.append_pooled(&pool, chunk);
        }
        prop_assert_eq!(plain.payload_len(), pooled.payload_len());
        prop_assert_eq!(plain.copy_payload_to_vec(), pooled.copy_payload_to_vec());
        prop_assert_eq!(plain_ledger.snapshot(), pooled_ledger.snapshot());
    }
}
