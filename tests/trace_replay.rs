//! Replaying synthetic traces through the full rig — the Active Trace
//! Player path the paper uses to drive its micro-benchmarks (§5.3).

use ncache_repro::servers::ServerMode;
use ncache_repro::testbed::nfs_rig::{NfsRig, NfsRigParams};
use ncache_repro::testbed::runner::{run, DriverOp, RunOptions};
use ncache_repro::workload::micro::SeqRead;
use ncache_repro::workload::trace::{parse_trace, write_trace, TracePlayer};
use ncache_repro::workload::{FileId, NfsOp};

fn to_driver(op: NfsOp, fh: u64) -> DriverOp {
    match op {
        NfsOp::Read { offset, len, .. } => DriverOp::Read {
            fh,
            offset: offset as u32,
            len,
        },
        NfsOp::Write { offset, len, .. } => DriverOp::Write {
            fh,
            offset: offset as u32,
            len,
        },
        NfsOp::Getattr { .. } => DriverOp::Getattr { fh },
        NfsOp::Lookup { .. } => DriverOp::Lookup {
            name: "traced".to_string(),
        },
    }
}

#[test]
fn synthetic_trace_round_trips_and_replays() {
    // Generate a synthetic sequential trace, serialize it, parse it back,
    // replay it through the rig, and check the results are identical to
    // running the generator directly.
    let ops: Vec<NfsOp> = SeqRead::new(FileId(0), 256 << 10, 16 << 10).collect();
    let text = write_trace(&ops);
    let parsed = parse_trace(&text).expect("valid trace");
    assert_eq!(parsed, ops);

    let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
    let fh = rig.create_file("traced", 256 << 10);
    let player = TracePlayer::new(parsed);
    let driver_ops: Vec<DriverOp> = player.map(|op| to_driver(op, fh)).collect();
    let result = run(&mut rig, driver_ops, &RunOptions::default());
    assert_eq!(result.ops, 16);
    assert_eq!(result.payload_bytes, 256 << 10);
    assert!(result.throughput_mbs > 0.0);
}

#[test]
fn trace_with_mixed_ops_executes_correctly() {
    let text = "\
# mixed synthetic trace
G 0
R 0 0 8192
W 0 8192 4096
R 0 8192 4096
L 0
";
    let player = TracePlayer::from_text(text).expect("valid trace");
    assert_eq!(player.len(), 5);

    let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
    let fh = rig.create_file("traced", 64 << 10);
    for op in player {
        match to_driver(op, fh) {
            DriverOp::Read { offset, len, .. } => {
                let data = rig.read(fh, offset, len);
                assert_eq!(data.len(), len as usize);
            }
            DriverOp::Write { offset, .. } => {
                let reply = rig.write(fh, offset, &vec![0x11u8; 4096]);
                assert_eq!(reply.status, ncache_repro::proto::nfs::NFS_OK);
            }
            DriverOp::Getattr { .. } => {
                assert_eq!(rig.getattr(fh), ncache_repro::proto::nfs::NFS_OK);
            }
            DriverOp::Lookup { .. } => {
                assert_eq!(rig.lookup("traced"), Some(fh));
            }
            DriverOp::Get { .. } => unreachable!(),
        }
    }
    // The write is visible afterwards.
    assert_eq!(rig.read(fh, 8192, 4096), vec![0x11u8; 4096]);
}

#[test]
fn runs_are_deterministic_across_replays() {
    let make = || {
        let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
        let fh = rig.create_sparse_file("det", 1 << 20);
        let ops: Vec<DriverOp> = SeqRead::new(FileId(0), 1 << 20, 8 << 10)
            .map(|op| to_driver(op, fh))
            .collect();
        run(&mut rig, ops, &RunOptions::default())
    };
    let a = make();
    let b = make();
    assert_eq!(a.elapsed, b.elapsed, "bit-identical simulated time");
    assert_eq!(a.payload_bytes, b.payload_bytes);
    assert_eq!(a.ops, b.ops);
    assert!((a.app_cpu_util - b.app_cpu_util).abs() < 1e-15);
}
