//! The concurrent data plane against its sequential byte-exact oracle.
//!
//! `run_nfs_sessions_parallel` executes session lanes on real threads;
//! the untouched sequential engine `run_nfs_sessions` is the oracle.
//! Under the commutativity discipline (warmed file, reads in a
//! read-only region, writes once to disjoint per-lane blocks, no
//! evictions) every observable must reconcile exactly:
//!
//! - the measured [`SessionsResult`] (throughput, latency, per-session
//!   ops) — the timing phase replays through the sequential engine, so
//!   this is byte-exact, not approximate;
//! - the three CopyLedgers (client / app / storage), total for total;
//! - the merged counters of every component (NFS server, fs cache,
//!   initiator, target, NCache shards), compared via the rendered
//!   [`MetricsReport`];
//! - final file bytes and final cache residency.
//!
//! Faulted points (loss on the client⇄server link) run each lane
//! against a private seed-derived fault plan, so the parallel engine is
//! compared against itself across thread counts: the inline
//! single-threaded run is the reference, and every thread count must
//! reproduce it exactly.

use ncache_repro::obs::{MetricsReport, Recorder, TraceConfig};
use ncache_repro::servers::ServerMode;
use ncache_repro::sim::FaultSpec;
use ncache_repro::testbed::executor;
use ncache_repro::testbed::nfs_rig::{NfsRig, NfsRigParams};
use ncache_repro::testbed::runner::DriverOp;
use ncache_repro::testbed::sessions::{
    run_nfs_sessions, run_nfs_sessions_parallel, SessionsOptions, SessionsResult,
};

/// Workload file size; ample cache capacity on default rig parameters
/// (8 MiB fs cache, 64 MiB NCache), so nothing evicts mid-run.
const FILE: u64 = 1 << 20;
const SPAN: u32 = 16 << 10;
const LANES: usize = 6;
const SEED: u64 = 0xD1FF;

fn build(mode: ServerMode, shards: usize, spec: Option<&FaultSpec>) -> (NfsRig, u64) {
    let params = NfsRigParams {
        shards,
        ..NfsRigParams::default()
    };
    let mut rig = match spec {
        Some(spec) => NfsRig::new_faulted(mode, params, spec, 0xC0FFEE),
        None => NfsRig::new(mode, params),
    };
    let fh = rig.create_file("oracle", FILE);
    // Warm every block (and NCache chunk): per-op hit/miss outcomes are
    // then independent of which lane touches a block first.
    let mut off = 0u64;
    while off < FILE {
        rig.read(fh, off as u32, 64 << 10);
        off += 64 << 10;
    }
    (rig, fh)
}

/// Per-lane streams: reads confined to the (read-only) upper half of
/// the file, one write into the lane's private block run in the lower
/// half, and a getattr. Any interleaving of different lanes' operations
/// commutes on every counted observable.
fn sessions(fh: u64) -> Vec<Vec<DriverOp>> {
    (0..LANES)
        .map(|lane| {
            let mut ops = Vec::new();
            for k in 0..4 {
                let slot = ((lane * 7 + k * 3) % 28) as u32;
                ops.push(DriverOp::Read {
                    fh,
                    offset: (FILE / 2) as u32 + slot * SPAN,
                    len: SPAN,
                });
            }
            ops.push(DriverOp::Write {
                fh,
                offset: lane as u32 * (2 * SPAN),
                len: SPAN,
            });
            ops.push(DriverOp::Getattr { fh });
            ops
        })
        .collect()
}

/// Everything the oracle reconciles after a run.
struct Outcome {
    result: SessionsResult,
    report: String,
    cache_chunks: usize,
    cache_bytes: u64,
    file_bytes: Vec<Vec<u8>>,
}

fn observe(mut rig: NfsRig, fh: u64, result: SessionsResult) -> Outcome {
    let report = rig.metrics_report().render();
    let (cache_chunks, cache_bytes) = rig.module().map_or((0, 0), |m| {
        let cache = m.borrow().cache_handle();
        (cache.len(), cache.pinned_bytes())
    });
    // Read-back mutates counters, so it happens after the report; both
    // engines' rigs take the identical read sequence.
    let mut file_bytes = Vec::new();
    for lane in 0..LANES as u32 {
        file_bytes.push(rig.read(fh, lane * (2 * SPAN), SPAN));
    }
    for slot in 0..4u32 {
        file_bytes.push(rig.read(fh, (FILE / 2) as u32 + slot * SPAN, SPAN));
    }
    Outcome {
        result,
        report,
        cache_chunks,
        cache_bytes,
        file_bytes,
    }
}

fn run_sequential(mode: ServerMode, shards: usize) -> Outcome {
    let (rig, fh) = build(mode, shards, None);
    let (rig, result) = run_nfs_sessions(rig, sessions(fh), &SessionsOptions::default());
    observe(rig, fh, result)
}

fn run_parallel(
    mode: ServerMode,
    shards: usize,
    spec: Option<&FaultSpec>,
    threads: usize,
) -> Outcome {
    let (rig, fh) = build(mode, shards, spec);
    let (rig, result) = run_nfs_sessions_parallel(
        rig,
        sessions(fh),
        &SessionsOptions::default(),
        threads,
        SEED,
    );
    observe(rig, fh, result)
}

fn assert_reconciled(oracle: &Outcome, got: &Outcome, what: &str) {
    assert_eq!(oracle.result, got.result, "{what}: SessionsResult");
    assert_eq!(oracle.report, got.report, "{what}: merged metrics report");
    assert_eq!(oracle.cache_chunks, got.cache_chunks, "{what}: cache chunks");
    assert_eq!(oracle.cache_bytes, got.cache_bytes, "{what}: cache bytes");
    assert_eq!(oracle.file_bytes, got.file_bytes, "{what}: file bytes");
}

/// Mode × shard grid; sharding only exists for NCache.
fn grid() -> Vec<(ServerMode, usize)> {
    vec![
        (ServerMode::Original, 1),
        (ServerMode::Baseline, 1),
        (ServerMode::NCache, 1),
        (ServerMode::NCache, 8),
    ]
}

#[test]
fn clean_runs_reconcile_against_the_sequential_oracle() {
    let max = executor::thread_count(None).max(3);
    for (mode, shards) in grid() {
        let oracle = run_sequential(mode, shards);
        for threads in [1, 2, max] {
            let got = run_parallel(mode, shards, None, threads);
            assert_reconciled(
                &oracle,
                &got,
                &format!("{mode:?}/shards={shards}/threads={threads}"),
            );
        }
    }
}

#[test]
fn latency_reports_reconcile_against_the_sequential_oracle() {
    // Per-request stage attribution rides the timing phase, which the
    // parallel engine replays through the sequential core — so the
    // rendered latency report (tail quantiles per path, queue/service
    // per stage, the named bottleneck) must be byte-equal to the
    // oracle's at every thread count.
    let render = |rec: &Recorder| {
        let mut report = MetricsReport::new();
        report.add_latency(&rec.histograms());
        report.render()
    };
    let max = executor::thread_count(None).max(3);
    for (mode, shards) in grid() {
        let (mut rig, fh) = build(mode, shards, None);
        let rec = Recorder::new();
        rec.enable(TraceConfig::default());
        rig.set_recorder(rec.clone());
        let _ = run_nfs_sessions(rig, sessions(fh), &SessionsOptions::default());
        let oracle = render(&rec);
        assert!(
            oracle.contains("bottleneck"),
            "{mode:?}: oracle report names a bottleneck:\n{oracle}"
        );
        for threads in [1, 2, max] {
            let (mut rig, fh) = build(mode, shards, None);
            let rec = Recorder::new();
            rec.enable(TraceConfig::default());
            rig.set_recorder(rec.clone());
            let _ = run_nfs_sessions_parallel(
                rig,
                sessions(fh),
                &SessionsOptions::default(),
                threads,
                SEED,
            );
            assert_eq!(
                oracle,
                render(&rec),
                "{mode:?}/shards={shards}/threads={threads}: latency report"
            );
        }
    }
}

#[test]
fn faulted_runs_reconcile_across_thread_counts() {
    let spec = FaultSpec {
        loss: 0.02,
        ..FaultSpec::default()
    };
    let max = executor::thread_count(None).max(3);
    for (mode, shards) in grid() {
        let inline = run_parallel(mode, shards, Some(&spec), 1);
        for threads in [2, max] {
            let got = run_parallel(mode, shards, Some(&spec), threads);
            assert_reconciled(
                &inline,
                &got,
                &format!("{mode:?}/shards={shards}/loss/threads={threads}"),
            );
        }
    }
}
