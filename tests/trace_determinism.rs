//! Trace-layer invariants: the unified tracing layer must be (1) byte
//! deterministic — same seed, same experiment → byte-identical exported
//! traces — (2) structurally sound — every span closes, substitution
//! events appear only under the NCache build — and (3) exact: the copy
//! events in a trace reconcile, byte for byte, with the CopyAccounting
//! ledger the data plane charges.

use ncache_repro::netbuf::LedgerSnapshot;
use ncache_repro::obs::{
    export_chrome_trace, export_jsonl, validate_chrome_trace, validate_jsonl, EventKind,
    Recorder, TraceConfig,
};
use ncache_repro::servers::ServerMode;
use ncache_repro::testbed::experiments::{self, Scale};
use ncache_repro::testbed::nfs_rig::{NfsRig, NfsRigParams};
use ncache_repro::testbed::runner::{run, DriverOp, RunOptions};

fn scale() -> Scale {
    Scale {
        allmiss_file: 2 << 20,
        allhit_file: 1 << 20,
        allhit_passes: 1,
        specweb_working_sets: vec![4 << 20],
        web_cache_bytes: 6 << 20,
        specweb_requests: 60,
        specsfs_ops: 100,
        specsfs_files: 8,
        specsfs_file_size: 64 << 10,
        overload_requests: 96,
    }
}

fn traced_fig4() -> (String, String) {
    let rec = Recorder::new();
    rec.enable(TraceConfig::default());
    experiments::fig4_traced(&scale(), &rec);
    let events = rec.events();
    assert_eq!(rec.dropped(), 0, "ring buffer must not drop at this scale");
    (export_chrome_trace(&events), export_jsonl(&events))
}

#[test]
fn fig4_traces_are_byte_identical_across_runs() {
    let (chrome_a, jsonl_a) = traced_fig4();
    let (chrome_b, jsonl_b) = traced_fig4();
    assert_eq!(chrome_a, chrome_b, "Chrome traces diverged between runs");
    assert_eq!(jsonl_a, jsonl_b, "JSONL streams diverged between runs");
    assert!(validate_chrome_trace(&chrome_a).expect("valid Chrome trace") > 0);
    assert!(validate_jsonl(&jsonl_a).expect("valid JSONL stream") > 0);
}

#[test]
fn spans_balance_and_substitutions_only_under_ncache() {
    for mode in ServerMode::ALL {
        let rec = Recorder::new();
        rec.enable(TraceConfig::default());
        let mut rig = NfsRig::new(mode, NfsRigParams::default());
        rig.set_recorder(rec.clone());
        let fh = rig.create_file("f", 256 << 10);
        let ops: Vec<DriverOp> = (0..8)
            .map(|i| DriverOp::Read {
                fh,
                offset: i * (32 << 10),
                len: 32 << 10,
            })
            .collect();
        run(&mut rig, ops, &RunOptions::default());

        assert!(rec.spans_opened() > 0, "{mode}: requests must open spans");
        assert!(rec.spans_balanced(), "{mode}: every span must close");
        let substitutions = rec
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Substitution { .. }))
            .count();
        if mode == ServerMode::NCache {
            assert!(substitutions > 0, "ncache reads must substitute");
            assert_eq!(rec.counter("ncache.substitution_missing"), 0);
        } else {
            assert_eq!(
                substitutions, 0,
                "{mode}: substitution events are NCache-only"
            );
        }
    }
}

#[test]
fn copy_events_reconcile_with_the_ledger_for_table2_flows() {
    let rec = Recorder::new();
    // The recorder must see every copy: unsampled spans still aggregate
    // counters, so sampling does not affect this reconciliation.
    rec.enable(TraceConfig::default());
    experiments::table2_traced(&rec);

    // Sum the trace's copy events by ledger category.
    let mut payload_ops = 0u64;
    let mut payload_bytes = 0u64;
    let mut meta_ops = 0u64;
    let mut meta_bytes = 0u64;
    let mut logical_ops = 0u64;
    let mut header_bytes = 0u64;
    let mut csum_bytes = 0u64;
    let mut csum_inherited = 0u64;
    let mut allocations = 0u64;
    for ev in rec.events() {
        if let EventKind::Copy { category, bytes } = ev.kind {
            match category {
                "payload" => {
                    payload_ops += 1;
                    payload_bytes += bytes;
                }
                "meta" => {
                    meta_ops += 1;
                    meta_bytes += bytes;
                }
                "logical" => logical_ops += 1,
                "header" => header_bytes += bytes,
                "csum" => csum_bytes += bytes,
                "csum_inherited" => csum_inherited += 1,
                "alloc" => allocations += 1,
                other => panic!("unknown copy category {other}"),
            }
        }
    }

    // `table2_traced` attaches the recorder to every rig before any
    // traffic, so the event totals must equal the combined ledgers of all
    // six rigs (three NFS + three kHTTPd) exactly. The recorder's own
    // counters are derived the same way — check both against each other.
    assert!(payload_ops > 0 && meta_ops > 0, "flows exercised both classes");
    assert_eq!(payload_ops, rec.counter("copy.payload.ops"));
    assert_eq!(payload_bytes, rec.counter("copy.payload.bytes"));
    assert_eq!(meta_ops, rec.counter("copy.meta.ops"));
    assert_eq!(meta_bytes, rec.counter("copy.meta.bytes"));
    assert_eq!(logical_ops, rec.counter("copy.logical.ops"));
    assert_eq!(header_bytes, rec.counter("copy.header.bytes"));
    assert_eq!(csum_bytes, rec.counter("copy.csum.bytes"));
    assert_eq!(csum_inherited, rec.counter("copy.csum_inherited.ops"));
    assert_eq!(allocations, rec.counter("copy.alloc.ops"));
}

#[test]
fn ledger_mirror_is_exact_for_every_config() {
    // Tighter version of the reconciliation: one rig per config, its own
    // ledger set, so the trace's copy totals must equal the summed ledger
    // snapshots — exactly, for all three builds.
    for mode in ServerMode::ALL {
        let rec = Recorder::new();
        rec.enable(TraceConfig::default());
        let mut rig = NfsRig::new(mode, NfsRigParams::default());
        rig.set_recorder(rec.clone());
        // mkfs charged the ledgers before the recorder attached; the
        // mirror covers everything from attach onward, so reconcile
        // against deltas.
        let base_client = rig.ledgers().client.snapshot();
        let base_app = rig.ledgers().app.snapshot();
        let base_storage = rig.ledgers().storage.snapshot();
        let fh = rig.create_file("f", 128 << 10);
        rig.read(fh, 0, 64 << 10);
        rig.write(fh, 0, &vec![0x7Eu8; 32 << 10]);
        rig.server_mut().fs_mut().sync().expect("sync");

        let total = |s: &LedgerSnapshot| (s.payload_copies, s.payload_bytes_copied);
        let ledgers = rig.ledgers();
        let (client_ops, client_bytes) =
            total(&ledgers.client.snapshot().delta_since(&base_client));
        let (app_ops, app_bytes) = total(&ledgers.app.snapshot().delta_since(&base_app));
        let (stor_ops, stor_bytes) =
            total(&ledgers.storage.snapshot().delta_since(&base_storage));

        assert_eq!(
            rec.counter("copy.payload.ops"),
            client_ops + app_ops + stor_ops,
            "{mode}: payload copy events must mirror the ledgers exactly"
        );
        assert_eq!(
            rec.counter("copy.payload.bytes"),
            client_bytes + app_bytes + stor_bytes,
            "{mode}: payload copy bytes must mirror the ledgers exactly"
        );
    }
}
