//! End-to-end correctness of the pass-through servers, across every build.
//!
//! The paper's correctness obligations (§3.2-§3.4): clients of the
//! original and NCache builds must always receive the true bytes — through
//! packet substitution, FHO-before-LBN resolution, remapping, cache
//! evictions and flushes — while the baseline build deliberately ships
//! junk of the right shape. These tests drive full request paths:
//! client → UDP/RPC/NFS (or TCP/HTTP) → server → buffer cache → iSCSI →
//! storage server and back.

use ncache_repro::proto::nfs::NFS_OK;
use ncache_repro::servers::ServerMode;
use ncache_repro::testbed::khttpd_rig::{KhttpdRig, KhttpdRigParams};
use ncache_repro::testbed::nfs_rig::{NfsRig, NfsRigParams};

fn correct_modes() -> [ServerMode; 2] {
    [ServerMode::Original, ServerMode::NCache]
}

#[test]
fn nfs_read_returns_exact_bytes_at_every_offset_and_size() {
    for mode in correct_modes() {
        let mut rig = NfsRig::new(mode, NfsRigParams::default());
        let fh = rig.create_file("data", 256 << 10);
        for &(off, len) in &[
            (0u32, 4096u32),
            (4096, 4096),
            (0, 32 << 10),
            (8192, 16 << 10),
            (128 << 10, 128 << 10),
            (0, 256 << 10),
        ] {
            let got = rig.read(fh, off, len);
            assert_eq!(
                got,
                NfsRig::pattern(fh, u64::from(off), len as usize),
                "{mode}: read({off}, {len})"
            );
        }
    }
}

#[test]
fn nfs_read_past_eof_is_clipped() {
    for mode in correct_modes() {
        let mut rig = NfsRig::new(mode, NfsRigParams::default());
        let fh = rig.create_file("short", 10_000);
        let (hdr, data) = rig.read_with_header(fh, 8192, 8192);
        assert_eq!(hdr.status, NFS_OK);
        assert_eq!(data.len(), 10_000 - 8192, "{mode}");
        assert_eq!(data, NfsRig::pattern(fh, 8192, 10_000 - 8192), "{mode}");
    }
}

#[test]
fn nfs_write_read_back_freshness_through_remap() {
    // §3.4: after an NFS WRITE the freshest data must always win — the
    // FHO cache is consulted before the LBN cache, and remapping preserves
    // the new contents across flushes.
    for mode in correct_modes() {
        let mut rig = NfsRig::new(mode, NfsRigParams::default());
        let fh = rig.create_file("f", 64 << 10);
        // Overwrite a block in the middle.
        let fresh = vec![0xD7u8; 8192];
        assert_eq!(rig.write(fh, 16384, &fresh).status, NFS_OK);
        // Immediately visible.
        assert_eq!(rig.read(fh, 16384, 8192), fresh, "{mode}: before flush");
        // Force the flush (placeholders remap FHO→LBN under NCache).
        rig.server_mut().fs_mut().sync().expect("sync");
        assert_eq!(rig.read(fh, 16384, 8192), fresh, "{mode}: after flush");
        // And after the caches are dropped entirely, storage has it.
        rig.quiesce();
        if let Some(module) = rig.module() {
            // Drop the network-centric cache too: prove the bytes reached
            // the storage server, not just the cache.
            let mut m = module.borrow_mut();
            m.cache_mut().invalidate(netbuf::key::Lbn(0).into());
        }
        assert_eq!(rig.read(fh, 16384, 8192), fresh, "{mode}: from storage");
        // Neighbouring data intact.
        assert_eq!(
            rig.read(fh, 0, 16384),
            NfsRig::pattern(fh, 0, 16384),
            "{mode}: prefix intact"
        );
    }
}

#[test]
fn nfs_interleaved_writes_and_reads_over_many_blocks() {
    for mode in correct_modes() {
        let mut rig = NfsRig::new(mode, NfsRigParams::default());
        let fh = rig.create_file("mix", 512 << 10);
        // Overwrite every third 4 KiB block.
        for blk in (0..128u32).step_by(3) {
            let data = vec![blk as u8 ^ 0xFF; 4096];
            assert_eq!(rig.write(fh, blk * 4096, &data).status, NFS_OK, "{mode}");
        }
        // Verify the whole file block by block.
        for blk in 0..128u32 {
            let got = rig.read(fh, blk * 4096, 4096);
            let expect = if blk % 3 == 0 {
                vec![blk as u8 ^ 0xFF; 4096]
            } else {
                NfsRig::pattern(fh, u64::from(blk) * 4096, 4096)
            };
            assert_eq!(got, expect, "{mode}: block {blk}");
        }
    }
}

#[test]
fn nfs_survives_cache_pressure_on_both_cache_levels() {
    // Small FS cache + small NCache: every structure evicts constantly,
    // and the client must still see true bytes.
    for mode in correct_modes() {
        let params = NfsRigParams {
            fs_cache_blocks: 64,
            ncache_bytes: 96 * (4096 + 128),
            ..NfsRigParams::default()
        };
        let mut rig = NfsRig::new(mode, params);
        let fh = rig.create_file("pressure", 2 << 20);
        // Sequential sweep, then strided re-read.
        for blk in 0..(2 << 20) / 16384u32 {
            let got = rig.read(fh, blk * 16384, 16384);
            assert_eq!(
                got,
                NfsRig::pattern(fh, u64::from(blk) * 16384, 16384),
                "{mode}: sweep block {blk}"
            );
        }
        for blk in (0..(2 << 20) / 4096u32).step_by(17) {
            let got = rig.read(fh, blk * 4096, 4096);
            assert_eq!(
                got,
                NfsRig::pattern(fh, u64::from(blk) * 4096, 4096),
                "{mode}: stride block {blk}"
            );
        }
    }
}

#[test]
fn nfs_lookup_and_getattr_work_in_all_modes() {
    for mode in ServerMode::ALL {
        let mut rig = NfsRig::new(mode, NfsRigParams::default());
        let fh = rig.create_file("name.bin", 12_345);
        assert_eq!(rig.lookup("name.bin"), Some(fh), "{mode}");
        assert_eq!(rig.lookup("ghost"), None, "{mode}");
        assert_eq!(rig.getattr(fh), NFS_OK, "{mode}");
    }
}

#[test]
fn baseline_ships_junk_but_correct_lengths() {
    let mut rig = NfsRig::new(ServerMode::Baseline, NfsRigParams::default());
    let fh = rig.create_file("junk", 64 << 10);
    let (hdr, data) = rig.read_with_header(fh, 0, 32 << 10);
    assert_eq!(hdr.status, NFS_OK);
    assert_eq!(hdr.count, 32 << 10, "lengths must be truthful");
    assert_eq!(data.len(), 32 << 10);
    assert_ne!(
        data,
        NfsRig::pattern(fh, 0, 32 << 10),
        "the measurement build does not move real payloads (§5.1)"
    );
}

#[test]
fn khttpd_serves_exact_pages_across_modes() {
    for mode in correct_modes() {
        let mut rig = KhttpdRig::new(mode, KhttpdRigParams::default());
        for (name, size) in [("tiny", 100u64), ("page", 75_000), ("block", 4096)] {
            rig.publish(name, size);
        }
        for (name, size) in [("tiny", 100u64), ("page", 75_000), ("block", 4096)] {
            let (hdr, body) = rig.get(&format!("/{name}"));
            assert_eq!(hdr.status, 200, "{mode}: {name}");
            assert_eq!(hdr.content_length, size, "{mode}: {name}");
            assert_eq!(body, rig.expected(name, size), "{mode}: {name}");
        }
        // Repeat from cache.
        let (_, body) = rig.get("/page");
        assert_eq!(body, rig.expected("page", 75_000), "{mode}: cached");
    }
}

#[test]
fn khttpd_substitution_leaves_no_placeholder_junk() {
    let mut rig = KhttpdRig::new(ServerMode::NCache, KhttpdRigParams::default());
    rig.publish("p", 200_000);
    for _ in 0..3 {
        let (_, body) = rig.get("/p");
        assert_eq!(body, rig.expected("p", 200_000));
    }
    let module = rig.module().expect("ncache build");
    let totals = module.borrow().substitution_totals();
    assert!(totals.substituted >= 3 * 48, "every body block substituted");
    assert_eq!(totals.missing, 0, "no key may miss the cache");
}

#[test]
fn ncache_pinned_memory_is_bounded() {
    let cap = 64u64 * (4096 + 128);
    let params = NfsRigParams {
        ncache_bytes: cap,
        ..NfsRigParams::default()
    };
    let mut rig = NfsRig::new(ServerMode::NCache, params);
    let fh = rig.create_file("big", 4 << 20);
    for blk in 0..(4 << 20) / 32768u32 {
        rig.read(fh, blk * 32768, 32768);
        let module = rig.module().expect("ncache build");
        let pinned = module.borrow().pinned_bytes();
        assert!(pinned <= cap, "pinned {pinned} exceeds capacity {cap}");
    }
}

#[test]
fn table1_inventory_holds_structurally() {
    // The NCache build must reuse the *same* file-system and buffer-cache
    // code as the original build — only the initiator and the standalone
    // module differ. This is enforced by construction (one Filesystem
    // type, one BufferCache type); here we assert the declared inventory.
    use ncache_repro::servers::hooks::modification_footprint;
    let rows = modification_footprint(ServerMode::NCache);
    assert!(rows
        .iter()
        .any(|h| h.component == "NFS/Web server daemon" && h.modification == "None"));
    assert!(rows
        .iter()
        .any(|h| h.component == "buffer cache" && h.modification == "None"));
}
