//! Executor invariants: every figure and table experiment must produce
//! byte-identical output at any worker count. Cells own their rigs, their
//! seeds, and their recorders; the merge happens in cell order — so the
//! rendered tables, the recorder's counters, and the exported Chrome
//! trace at N threads must equal the single-threaded run exactly.

use ncache_repro::obs::{export_chrome_trace, Recorder, TraceConfig};
use ncache_repro::testbed::executor;
use ncache_repro::testbed::experiments::{self, render_table2, Scale};
use ncache_repro::testbed::nfs_rig::{NfsRig, NfsRigParams};
use ncache_repro::testbed::runner::{run, DriverOp, RunOptions};
use ncache_repro::servers::ServerMode;

fn scale() -> Scale {
    Scale {
        allmiss_file: 2 << 20,
        allhit_file: 1 << 20,
        allhit_passes: 1,
        specweb_working_sets: vec![4 << 20],
        web_cache_bytes: 6 << 20,
        specweb_requests: 60,
        specsfs_ops: 100,
        specsfs_files: 8,
        specsfs_file_size: 64 << 10,
        overload_requests: 128,
    }
}

/// One experiment, rendered to the exact text the `repro` binary prints.
type Runner = fn(&Scale, Option<&Recorder>, usize) -> String;

fn table2_r(_: &Scale, rec: Option<&Recorder>, threads: usize) -> String {
    render_table2(&experiments::table2_with(rec, threads))
}

fn fig4_r(s: &Scale, rec: Option<&Recorder>, threads: usize) -> String {
    let (thr, cpu) = experiments::fig4_with(s, rec, threads);
    format!("{thr}\n{cpu}")
}

fn fig5_r(s: &Scale, rec: Option<&Recorder>, threads: usize) -> String {
    let (cpu1, thr2) = experiments::fig5_with(s, rec, threads);
    format!("{cpu1}\n{thr2}")
}

fn fig6a_r(s: &Scale, rec: Option<&Recorder>, threads: usize) -> String {
    experiments::fig6a_with(s, rec, threads).to_string()
}

fn fig6b_r(s: &Scale, rec: Option<&Recorder>, threads: usize) -> String {
    experiments::fig6b_with(s, rec, threads).to_string()
}

fn fig7_r(s: &Scale, rec: Option<&Recorder>, threads: usize) -> String {
    experiments::fig7_with(s, rec, threads).to_string()
}

fn overload_r(s: &Scale, rec: Option<&Recorder>, threads: usize) -> String {
    let (goodput, tails, shares) = experiments::overload_sweep_with(s, rec, threads, 1);
    format!("{goodput}\n{tails}\n{shares}")
}

const EXPERIMENTS: [(&str, Runner); 7] = [
    ("table2", table2_r),
    ("fig4", fig4_r),
    ("fig5", fig5_r),
    ("fig6a", fig6a_r),
    ("fig6b", fig6b_r),
    ("fig7", fig7_r),
    ("overload", overload_r),
];

/// Runs one experiment traced at `threads` workers, returning everything
/// an observer can see: the rendered tables, the merged counters, and the
/// exported Chrome trace bytes.
fn observe(
    run: Runner,
    threads: usize,
) -> (String, std::collections::BTreeMap<String, u64>, String) {
    let rec = Recorder::new();
    rec.enable(TraceConfig::default());
    let rendered = run(&scale(), Some(&rec), threads);
    let chrome = export_chrome_trace(&rec.events());
    (rendered, rec.counters(), chrome)
}

#[test]
fn every_experiment_is_thread_count_invariant() {
    let max = executor::thread_count(None).max(3);
    for (name, runner) in EXPERIMENTS {
        let base = observe(runner, 1);
        for threads in [2, max] {
            let got = observe(runner, threads);
            assert_eq!(
                base.0, got.0,
                "{name}: rendered tables diverged at {threads} threads"
            );
            assert_eq!(
                base.1, got.1,
                "{name}: recorder counters diverged at {threads} threads"
            );
            assert_eq!(
                base.2, got.2,
                "{name}: Chrome trace bytes diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn untraced_runs_match_the_single_threaded_tables() {
    // The recorder-free path takes the same cells through the same merge;
    // spot-check the rendered output at an oversubscribed worker count.
    for (name, runner) in EXPERIMENTS {
        let base = runner(&scale(), None, 1);
        let wide = runner(&scale(), None, 16);
        assert_eq!(base, wide, "{name}: untraced output diverged");
    }
}

#[test]
fn latency_report_is_thread_and_shard_invariant() {
    // The rendered latency-attribution report — tail quantiles per data
    // path plus per-stage queue/service shares — is read off the merged
    // recorder histograms, so it must come out byte-identical however
    // the overload sweep's cells are scheduled or the cache is sharded.
    let report_for = |threads: usize, shards: usize| {
        let rec = Recorder::new();
        rec.enable(TraceConfig::default());
        experiments::overload_sweep_with(&scale(), Some(&rec), threads, shards);
        let mut report = ncache_repro::obs::MetricsReport::new();
        report.add_latency(&rec.histograms());
        report.render()
    };
    let base = report_for(1, 1);
    assert!(base.contains("bottleneck"), "report names a bottleneck:\n{base}");
    assert!(base.contains("p999"), "report carries tail quantiles:\n{base}");
    let max = executor::thread_count(None).max(3);
    assert_eq!(base, report_for(max, 1), "latency report diverged across threads");
    assert_eq!(base, report_for(max, 8), "latency report diverged across shards");
}

#[test]
fn identical_rigs_produce_equal_run_results() {
    // The executor's determinism claim bottoms out here: a rig built from
    // the same parameters and driven by the same ops measures the same
    // RunResult, timeline included.
    let measure = || {
        let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
        let fh = rig.create_file("f", 128 << 10);
        let ops: Vec<DriverOp> = (0..16)
            .map(|i| DriverOp::Read {
                fh,
                offset: i * 8192,
                len: 8192,
            })
            .collect();
        run(&mut rig, ops, &RunOptions::default())
    };
    assert_eq!(measure(), measure());
}
