//! Sharded-cache equivalence: for arbitrary operation sequences, the
//! sharded [`NetCacheShards`] at any shard count is observationally
//! identical to the single two-part [`NetCache`] — same lookup results,
//! same writeback sequences, same merged statistics, same hit ratio, same
//! global clean-LRU order. Sharding must only partition the key space.

use check::gen::*;
use check::{prop_assert, prop_assert_eq, property};

use ncache_repro::ncache::cache::NetCache;
use ncache_repro::ncache::shards::NetCacheShards;
use ncache_repro::netbuf::key::{Fho, FileHandle, KeyStamp, Lbn};
use ncache_repro::netbuf::{BufPool, Segment};

/// One cache operation, small key space so entries collide and evict.
#[derive(Clone, Debug)]
enum CacheOp {
    InsertLbn { key: u64, fill: u8 },
    InsertFho { key: u64, fill: u8 },
    Lookup { key: u64, fho: bool },
    Resolve { key: u64 },
    Remap { key: u64 },
    MarkClean { key: u64 },
    Invalidate { key: u64, fho: bool },
}

fn cache_op() -> impl Gen<Value = CacheOp> {
    check::one_of![
        (ints(0u64..16), any_u8()).map(|(key, fill)| CacheOp::InsertLbn { key, fill }),
        (ints(0u64..16), any_u8()).map(|(key, fill)| CacheOp::InsertFho { key, fill }),
        (ints(0u64..16), any_bool()).map(|(key, fho)| CacheOp::Lookup { key, fho }),
        ints(0u64..16).map(|key| CacheOp::Resolve { key }),
        ints(0u64..16).map(|key| CacheOp::Remap { key }),
        ints(0u64..16).map(|key| CacheOp::MarkClean { key }),
        (ints(0u64..16), any_bool()).map(|(key, fho)| CacheOp::Invalidate { key, fho }),
    ]
}

fn fho_of(key: u64) -> Fho {
    Fho::new(FileHandle(1), key * 4096)
}

/// Applies `op` to a sharded cache and returns every observable as a
/// comparable value: `(ok, first bytes of each returned segment list,
/// writeback lbn/len/first-byte triples)`.
fn apply(
    cache: &mut NetCacheShards,
    op: &CacheOp,
) -> (bool, Vec<u8>, Vec<(u64, usize, u8)>) {
    let seg = |fill: u8| vec![Segment::from_vec(vec![fill; 4096])];
    let firsts = |segs: &Option<Vec<Segment>>| -> Vec<u8> {
        segs.iter()
            .flatten()
            .map(|s| s.as_slice()[0])
            .collect()
    };
    match *op {
        CacheOp::InsertLbn { key, fill } => match cache.insert_lbn(Lbn(key), seg(fill), 4096, false)
        {
            Ok(wbs) => (
                true,
                Vec::new(),
                wbs.iter()
                    .map(|w| (w.lbn.0, w.len, w.segs[0].as_slice()[0]))
                    .collect(),
            ),
            Err(_) => (false, Vec::new(), Vec::new()),
        },
        CacheOp::InsertFho { key, fill } => match cache.insert_fho(fho_of(key), seg(fill), 4096) {
            Ok(wbs) => (
                true,
                Vec::new(),
                wbs.iter()
                    .map(|w| (w.lbn.0, w.len, w.segs[0].as_slice()[0]))
                    .collect(),
            ),
            Err(_) => (false, Vec::new(), Vec::new()),
        },
        CacheOp::Lookup { key, fho } => {
            let k = if fho {
                fho_of(key).into()
            } else {
                Lbn(key).into()
            };
            let got = cache.lookup(k);
            (got.is_some(), firsts(&got), Vec::new())
        }
        CacheOp::Resolve { key } => {
            let stamp = KeyStamp::new().with_lbn(Lbn(key)).with_fho(fho_of(key));
            match cache.resolve(&stamp) {
                Some((k, segs)) => (
                    matches!(k, ncache_repro::netbuf::key::CacheKey::Fho(_)),
                    firsts(&Some(segs)),
                    Vec::new(),
                ),
                None => (false, Vec::new(), Vec::new()),
            }
        }
        CacheOp::Remap { key } => {
            let got = cache.remap(fho_of(key), Lbn(key));
            (got.is_some(), firsts(&got), Vec::new())
        }
        CacheOp::MarkClean { key } => {
            cache.mark_clean(Lbn(key).into());
            (true, Vec::new(), Vec::new())
        }
        CacheOp::Invalidate { key, fho } => {
            let k = if fho {
                fho_of(key).into()
            } else {
                Lbn(key).into()
            };
            (cache.invalidate(k), Vec::new(), Vec::new())
        }
    }
}

property! {
    #![cases(24)]

    /// The oracle is the sharded cache at N=1 (delegating every call to
    /// one `NetCache`); N∈{2, 8} must match it operation by operation.
    fn prop_shard_count_is_unobservable(
        ops in vec_of(cache_op(), 1..120),
        capacity_chunks in ints(3u64..16),
    ) {
        let capacity = capacity_chunks * (4096 + 64);
        let mut caches: Vec<NetCacheShards> = [1usize, 2, 8]
            .iter()
            .map(|&n| NetCacheShards::new(BufPool::new(capacity), 64, n))
            .collect();
        for (i, op) in ops.iter().enumerate() {
            let oracle = apply(&mut caches[0], op);
            for (c, cache) in caches.iter_mut().enumerate().skip(1) {
                let got = apply(cache, op);
                prop_assert_eq!(
                    &got, &oracle,
                    "op {} ({:?}) diverged on cache {}", i, op, c
                );
            }
        }
        // Terminal state: merged stats, hit ratio, occupancy and the
        // global clean-LRU order are identical, and per-shard stats merge
        // to the oracle's totals.
        let oracle_stats = caches[0].stats();
        let oracle_len = caches[0].len();
        let oracle_clean = caches[0].clean_keys();
        for cache in &caches[1..] {
            prop_assert_eq!(cache.stats(), oracle_stats);
            prop_assert_eq!(cache.stats().hit_ratio(), oracle_stats.hit_ratio());
            prop_assert_eq!(cache.len(), oracle_len);
            prop_assert_eq!(cache.clean_keys(), oracle_clean.clone());
            let merged = cache.per_shard_stats().iter().fold(
                ncache_repro::ncache::NetCacheStats::default(),
                |mut acc, s| {
                    acc.merge(s);
                    acc
                },
            );
            prop_assert_eq!(merged, oracle_stats);
        }
    }

    /// The N=1 sharded cache and the plain `NetCache` really are the same
    /// machine: drive both over LBN-only traffic and compare hits,
    /// read-back bytes and stats. (FHO/remap traffic is covered above —
    /// the plain cache is the N=1 delegate by construction.)
    fn prop_single_shard_matches_plain_cache(
        ops in vec_of((any_bool(), ints(0u64..12), any_u8()), 1..100),
        capacity_chunks in ints(3u64..12),
    ) {
        let capacity = capacity_chunks * (4096 + 64);
        let mut plain = NetCache::new(BufPool::new(capacity), 64);
        let sharded = NetCacheShards::new(BufPool::new(capacity), 64, 1);
        for (is_insert, key, fill) in ops {
            if is_insert {
                let seg = || vec![Segment::from_vec(vec![fill; 4096])];
                let a = plain.insert_lbn(Lbn(key), seg(), 4096, false);
                let b = sharded.insert_lbn(Lbn(key), seg(), 4096, false);
                prop_assert_eq!(a.is_ok(), b.is_ok());
                let (wa, wb) = (a.unwrap_or_default(), b.unwrap_or_default());
                prop_assert_eq!(wa.len(), wb.len());
                for (x, y) in wa.iter().zip(&wb) {
                    prop_assert_eq!(x.lbn, y.lbn);
                    prop_assert_eq!(x.segs[0].as_slice(), y.segs[0].as_slice());
                }
            } else {
                let a = plain.lookup(Lbn(key).into());
                let b = sharded.lookup(Lbn(key).into());
                prop_assert_eq!(a.is_some(), b.is_some());
                if let (Some(a), Some(b)) = (a, b) {
                    prop_assert_eq!(a[0].as_slice(), b[0].as_slice());
                }
            }
        }
        prop_assert_eq!(plain.stats(), sharded.stats());
        prop_assert!((plain.stats().hit_ratio() - sharded.stats().hit_ratio()).abs() < 1e-15);
        prop_assert_eq!(plain.len(), sharded.len());
    }
}
