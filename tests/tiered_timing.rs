//! Timing contracts of the tiered backend, end to end.
//!
//! The tier is a timing-only concern: placement, promotion, and faults
//! never change a byte of any reply. What they must change — and
//! exactly how — is the clock:
//!
//! - a scan whose extents get promoted finishes strictly sooner on the
//!   NVMe-fronted backend than on the flat array, in integer
//!   nanoseconds;
//! - the promotion copy appears as its own `tier-promote` stage and the
//!   per-request stage breakdown still telescopes exactly to the
//!   end-to-end latency, in both the closed-loop runner and the
//!   sessions engine;
//! - a transient fast-tier fault falls back to the slow array for that
//!   read only: counted (`fault.tier_fallback`), charged (never
//!   cheaper), and leaving the placement map untouched.

use ncache_repro::blockdev::TierConfig;
use ncache_repro::obs::{EventKind, Recorder, TraceConfig};
use ncache_repro::servers::ServerMode;
use ncache_repro::testbed::nfs_rig::{NfsRig, NfsRigParams};
use ncache_repro::testbed::runner::{run, DriverOp, RunOptions, RunResult};
use ncache_repro::testbed::sessions::{run_nfs_sessions, SessionsOptions};

const SPAN: u32 = 16 << 10;
const SPANS: u32 = 64;
const FILE: u64 = SPANS as u64 * SPAN as u64; // 1 MiB, 256 blocks
const CYCLES: u32 = 4;

/// A rig whose buffer cache is far smaller than the scanned region, so
/// every pass goes back to the backend; sparse file, so every block is
/// clean and the backend sees pure reads.
fn scan_rig() -> (NfsRig, u64) {
    let params = NfsRigParams {
        fs_cache_blocks: 16,
        read_ahead_blocks: 0,
        ..NfsRigParams::default()
    };
    let mut rig = NfsRig::new(ServerMode::Original, params);
    let fh = rig.create_sparse_file("scan", FILE);
    (rig, fh)
}

/// Four passes over the region: passes one and two read from the slow
/// array (the second triggers promotion at `promote_after = 2`), passes
/// three and four read from the fast tier.
fn scan_ops(fh: u64) -> Vec<DriverOp> {
    (0..CYCLES * SPANS)
        .map(|k| DriverOp::Read {
            fh,
            offset: (k % SPANS) * SPAN,
            len: SPAN,
        })
        .collect()
}

fn scan(tier: Option<TierConfig>) -> RunResult {
    let (mut rig, fh) = scan_rig();
    let opts = RunOptions {
        tier,
        ..RunOptions::default()
    };
    run(&mut rig, scan_ops(fh), &opts)
}

#[test]
fn promoted_scan_is_strictly_cheaper_than_the_flat_array() {
    let flat = scan(None);
    let tiered = scan(Some(TierConfig::nvme_front(1024)));
    assert_eq!(flat.tier, None, "flat run reports no tier");
    let stats = tiered.tier.expect("tiered run reports stats");
    assert!(stats.promotions > 0, "second pass promotes: {stats:?}");
    assert!(stats.fast_reads > 0, "later passes hit the fast tier: {stats:?}");
    assert!(stats.slow_reads > 0, "first passes hit the array: {stats:?}");
    assert_eq!(stats.fault_fallbacks, 0, "no faults configured");
    // Timing-only: the functional outcome is untouched.
    assert_eq!(flat.ops, tiered.ops);
    assert_eq!(flat.payload_bytes, tiered.payload_bytes);
    // The whole point, in integer nanoseconds.
    assert!(
        tiered.elapsed < flat.elapsed,
        "fast tier must be strictly cheaper: {:?} vs {:?}",
        tiered.elapsed,
        flat.elapsed
    );
}

/// Walks every Request event: exact telescoping, and at least one
/// request carrying the promotion copy as its own stage.
fn assert_stages_telescope(rec: &Recorder) -> u64 {
    let mut requests = 0u64;
    let mut promoted = 0u64;
    for ev in rec.events() {
        if let EventKind::Request {
            start_ns,
            end_ns,
            stages,
            ..
        } = &ev.kind
        {
            requests += 1;
            let sum: u64 = stages.iter().map(|s| s.queue_ns + s.service_ns).sum();
            assert_eq!(
                sum,
                end_ns - start_ns,
                "stage sum telescopes to end-to-end latency: {stages:?}"
            );
            if stages.iter().any(|s| s.stage == "tier-promote") {
                promoted += 1;
            }
        }
    }
    assert!(requests > 0, "the trace recorded requests");
    promoted
}

#[test]
fn tier_promote_stage_telescopes_in_the_closed_loop_runner() {
    let (mut rig, fh) = scan_rig();
    let rec = Recorder::new();
    rec.enable(TraceConfig::default());
    rig.set_recorder(rec.clone());
    let opts = RunOptions {
        tier: Some(TierConfig::nvme_front(1024)),
        ..RunOptions::default()
    };
    let r = run(&mut rig, scan_ops(fh), &opts);
    assert!(r.tier.expect("tier stats").promotions > 0);
    let promoted = assert_stages_telescope(&rec);
    assert!(promoted > 0, "promotion shows up as a tier-promote stage");
    assert_eq!(
        rec.counters().get("tier.promote").copied().unwrap_or(0),
        r.tier.expect("tier stats").promotions,
        "counter and backend stats agree"
    );
}

#[test]
fn tier_promote_stage_telescopes_in_the_sessions_engine() {
    let (mut rig, fh) = scan_rig();
    let rec = Recorder::new();
    rec.enable(TraceConfig::default());
    rig.set_recorder(rec.clone());
    // The same scan, split round-robin across four closed-loop lanes.
    let mut sessions: Vec<Vec<DriverOp>> = vec![Vec::new(); 4];
    for (i, op) in scan_ops(fh).into_iter().enumerate() {
        sessions[i % 4].push(op);
    }
    let opts = SessionsOptions {
        tier: Some(TierConfig::nvme_front(1024)),
        ..SessionsOptions::default()
    };
    let (_rig, r) = run_nfs_sessions(rig, sessions, &opts);
    let stats = r.tier.expect("sessions result carries tier stats");
    assert!(stats.promotions > 0, "{stats:?}");
    assert!(stats.fast_reads > 0, "{stats:?}");
    let promoted = assert_stages_telescope(&rec);
    assert!(promoted > 0, "promotion shows up as a tier-promote stage");
}

#[test]
fn transient_fast_faults_fall_back_to_the_slow_array() {
    let clean = scan(Some(TierConfig::nvme_front(1024)));
    let faulted = scan(Some(TierConfig::nvme_front(1024).with_faults(0xFA117, 300_000)));
    let clean_stats = clean.tier.expect("tier stats");
    let faulted_stats = faulted.tier.expect("tier stats");
    assert!(
        faulted_stats.fault_fallbacks > 0,
        "a 30% fault rate must trip fallbacks: {faulted_stats:?}"
    );
    // A fault redirects one read; it never evicts. Placement — built
    // from the deterministic miss counts, which faults don't touch —
    // ends identical to the clean run's.
    assert_eq!(
        faulted_stats.fast_resident_blocks, clean_stats.fast_resident_blocks,
        "fallback must not evict"
    );
    assert_eq!(faulted_stats.promotions, clean_stats.promotions);
    // Functionally identical; in time, a fallback is never cheaper.
    assert_eq!(faulted.ops, clean.ops);
    assert_eq!(faulted.payload_bytes, clean.payload_bytes);
    assert!(
        faulted.elapsed >= clean.elapsed,
        "fallbacks pay the slow path: {:?} vs {:?}",
        faulted.elapsed,
        clean.elapsed
    );
    // The fallback counter rides the standard fault.* namespace.
    let (mut rig, fh) = scan_rig();
    let rec = Recorder::new();
    rec.enable(TraceConfig::default());
    rig.set_recorder(rec.clone());
    let opts = RunOptions {
        tier: Some(TierConfig::nvme_front(1024).with_faults(0xFA117, 300_000)),
        ..RunOptions::default()
    };
    let r = run(&mut rig, scan_ops(fh), &opts);
    assert_eq!(
        rec.counters().get("fault.tier_fallback").copied().unwrap_or(0),
        r.tier.expect("tier stats").fault_fallbacks,
        "counter and backend stats agree"
    );
}
